// Tests for the plain-CNN architecture builder, MimeNetwork on custom
// architectures, and fixed-point quantization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "arch/plain_cnn.h"
#include "common/check.h"
#include "core/mime_network.h"
#include "core/storage.h"
#include "hw/simulator.h"
#include "nn/quantize.h"

namespace mime {
namespace {

arch::PlainCnnConfig small_cnn() {
    arch::PlainCnnConfig config;
    config.input_size = 32;
    config.blocks = {{8, 2}, {16, 2}};
    config.fc_widths = {32};
    config.num_classes = 10;
    return config;
}

TEST(PlainCnn, SpecShapes) {
    const auto layers = arch::plain_cnn_spec(small_cnn());
    ASSERT_EQ(layers.size(), 5u);  // 2 + 2 convs + 1 fc
    EXPECT_EQ(layers[0].name, "conv1");
    EXPECT_EQ(layers[0].in_channels, 3);
    EXPECT_EQ(layers[1].pool_after, true);
    EXPECT_EQ(layers[2].in_height, 16);  // after pool
    EXPECT_EQ(layers[4].name, "fc5");
    EXPECT_EQ(layers[4].kind, arch::LayerKind::fc);
    // fc input = 16 channels * 8 * 8 after two pools.
    EXPECT_EQ(layers[4].in_channels, 16 * 8 * 8);
}

TEST(PlainCnn, ClassifierMatchesLastFc) {
    const auto cls = arch::plain_cnn_classifier(small_cnn());
    EXPECT_EQ(cls.in_channels, 32);
    EXPECT_EQ(cls.out_channels, 10);
}

TEST(PlainCnn, NoFcVariantClassifierDims) {
    arch::PlainCnnConfig config = small_cnn();
    config.fc_widths = {};
    const auto layers = arch::plain_cnn_spec(config);
    EXPECT_EQ(layers.back().kind, arch::LayerKind::conv);
    const auto cls = arch::plain_cnn_classifier(config);
    // Last conv at 16x16 pools to 8x8: 16 * 64 inputs.
    EXPECT_EQ(cls.in_channels, 16 * 8 * 8);
}

TEST(PlainCnn, RejectsBadConfig) {
    arch::PlainCnnConfig config = small_cnn();
    config.input_size = 6;  // not divisible by 4
    EXPECT_THROW(arch::plain_cnn_spec(config), check_error);
    config = small_cnn();
    config.blocks.clear();
    EXPECT_THROW(arch::plain_cnn_spec(config), check_error);
}

TEST(MimeNetworkCustom, BuildsAndRunsPlainCnn) {
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(small_cnn());
    config.custom_classifier = arch::plain_cnn_classifier(small_cnn());
    config.seed = 4;
    core::MimeNetwork net(config);

    EXPECT_EQ(net.site_count(), 5);
    EXPECT_EQ(net.site_name(4), "fc5");

    Rng rng(1);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    net.set_training(false);
    const Tensor logits = net.forward(x);
    EXPECT_EQ(logits.shape(), Shape({2, 10}));

    // Threshold machinery works on the custom architecture too.
    net.set_mode(core::ActivationMode::threshold);
    net.reset_thresholds(0.2f);
    const Tensor masked_logits = net.forward(x);
    EXPECT_EQ(masked_logits.shape(), Shape({2, 10}));
}

TEST(MimeNetworkCustom, NoHiddenFcArchitecture) {
    arch::PlainCnnConfig cnn = small_cnn();
    cnn.fc_widths = {};
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(cnn);
    config.custom_classifier = arch::plain_cnn_classifier(cnn);
    config.seed = 4;
    core::MimeNetwork net(config);
    Rng rng(2);
    const Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
    net.set_training(false);
    EXPECT_EQ(net.forward(x).shape(), Shape({1, 10}));
}

TEST(MimeNetworkCustom, WorksWithStorageAndSimulator) {
    // The whole pipeline is architecture-generic: storage model and
    // hardware simulator consume the same specs.
    const auto layers = arch::plain_cnn_spec(small_cnn());
    const auto cls = arch::plain_cnn_classifier(small_cnn());
    core::StorageModel storage(layers, cls);
    EXPECT_GT(storage.savings(3), 1.0);

    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    hw::SimulationOptions options;
    options.scheme = hw::Scheme::mime;
    options.batch = {0, 0, 0};
    options.profiles = {
        hw::SparsityProfile::uniform("u", 0.5,
                                     static_cast<std::int64_t>(layers.size()))};
    const auto result = sim.run(layers, options);
    EXPECT_EQ(result.layers.size(), layers.size());
    EXPECT_GT(result.total_energy.total(), 0.0);
}

TEST(Quantize, SixteenBitIsNearlyLossless) {
    Rng rng(3);
    Tensor t = Tensor::randn({1000}, rng);
    const double rel16 = nn::quantization_relative_error(t, 16);
    EXPECT_LT(rel16, 1e-4);
    const double rel8 = nn::quantization_relative_error(t, 8);
    EXPECT_GT(rel8, rel16);  // fewer bits, more error
    EXPECT_LT(rel8, 0.05);
}

TEST(Quantize, StatsAreConsistent) {
    Rng rng(5);
    Tensor t = Tensor::randn({512}, rng);
    const Tensor original = t;
    const auto stats = nn::fake_quantize(t, 8);
    EXPECT_GT(stats.scale, 0.0);
    EXPECT_GE(stats.max_abs_error, stats.mean_abs_error);
    // Round-to-nearest error is bounded by half an LSB (plus clipping).
    EXPECT_LE(stats.max_abs_error, stats.scale * 0.5 + 1e-7);
    // Idempotent: quantizing again is exact (same grid).
    Tensor again = t;
    const auto stats2 = nn::fake_quantize(again, 8);
    EXPECT_LT(stats2.mean_abs_error, 1e-7);
}

TEST(Quantize, ZeroTensorUnchanged) {
    Tensor t({16});
    const auto stats = nn::fake_quantize(t, 8);
    EXPECT_EQ(stats.scale, 0.0);
    EXPECT_EQ(sum(t), 0.0f);
}

TEST(Quantize, RejectsSillyBitWidths) {
    Tensor t({4});
    EXPECT_THROW(nn::fake_quantize(t, 1), check_error);
    EXPECT_THROW(nn::fake_quantize(t, 32), check_error);
}

TEST(Quantize, ModuleParametersQuantized) {
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(small_cnn());
    config.custom_classifier = arch::plain_cnn_classifier(small_cnn());
    config.seed = 4;
    core::MimeNetwork net(config);

    Rng rng(6);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    net.set_training(false);
    const Tensor before = net.forward(x);

    const double worst = nn::fake_quantize_parameters(net.network(), 16);
    EXPECT_GT(worst, 0.0);
    const Tensor after = net.forward(x);

    // 16-bit deployment precision barely moves the logits (Table IV
    // assumption holds for our models).
    for (std::int64_t i = 0; i < before.numel(); ++i) {
        EXPECT_NEAR(before[i], after[i], 2e-2f);
    }
}

TEST(Quantize, PerChannelNoWorseThanPerTensor) {
    Rng rng(7);
    // Per-channel shines when channel magnitudes differ wildly: scale
    // the rows across three orders of magnitude.
    Tensor t = Tensor::randn({8, 64}, rng);
    for (std::int64_t c = 0; c < 8; ++c) {
        const float gain = std::pow(10.0f, static_cast<float>(c % 4) - 2.0f);
        for (std::int64_t i = 0; i < 64; ++i) {
            t.data()[c * 64 + i] *= gain;
        }
    }
    Tensor per_tensor = t;
    Tensor per_channel = t;
    const auto global = nn::fake_quantize(per_tensor, 8);
    const auto channel = nn::fake_quantize_per_channel(per_channel, 8);

    // Each channel's scale is at most the global one, so the worst
    // absolute error can only improve. (The *relative* metric is
    // normalized per channel — ~half an LSB over the channel's own
    // absmax either way — so it is not comparable across variants.)
    EXPECT_LE(channel.max_abs_error, global.max_abs_error + 1e-12);
    EXPECT_LE(channel.scale, global.scale + 1e-12);
    EXPECT_GT(channel.max_channel_rel_error, 0.0);
    // Small channels are resolvable now: mean error drops hard.
    EXPECT_LT(channel.mean_abs_error, global.mean_abs_error * 0.5);
}

TEST(Quantize, PerChannelZeroChannelsUnchanged) {
    Rng rng(8);
    Tensor t = Tensor::randn({4, 16}, rng);
    for (std::int64_t i = 0; i < 16; ++i) {
        t.data()[2 * 16 + i] = 0.0f;  // channel 2 all-zero
    }
    const Tensor original = t;
    const auto stats = nn::fake_quantize_per_channel(t, 8);
    EXPECT_GT(stats.scale, 0.0);
    for (std::int64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(t.data()[2 * 16 + i], 0.0f);
    }
    // A fully zero tensor reports scale 0 and no error.
    Tensor zeros({3, 5});
    const auto zstats = nn::fake_quantize_per_channel(zeros, 8);
    EXPECT_EQ(zstats.scale, 0.0);
    EXPECT_EQ(zstats.max_abs_error, 0.0);
    EXPECT_EQ(zstats.saturated, 0);
}

TEST(Quantize, SymmetricScaleNeverSaturates) {
    // The absmax-derived scale maps the extreme values onto the last
    // integer level exactly, so the clip counter must stay zero. It
    // exists to catch a future scale policy (percentile calibration,
    // cross-batch reuse) that actually clips — if this starts failing,
    // saturation became real and needs accuracy analysis.
    Rng rng(9);
    Tensor t = Tensor::randn({256}, rng);
    t.data()[17] = 100.0f;  // a hard outlier still defines the scale
    const auto stats = nn::fake_quantize(t, 8);
    EXPECT_EQ(stats.saturated, 0);

    Tensor m = Tensor::randn({6, 40}, rng);
    const auto cstats = nn::fake_quantize_per_channel(m, 6);
    EXPECT_EQ(cstats.saturated, 0);
}

TEST(Quantize, NonPowerOfTwoBitWidths) {
    // bits = 5 -> 15 positive levels; nothing in the code assumes
    // power-of-two level counts, and the half-LSB error bound must hold
    // for odd widths too.
    Rng rng(10);
    Tensor t = Tensor::randn({333}, rng);
    const Tensor original = t;
    const auto stats = nn::fake_quantize(t, 5);
    const double levels = 15.0;
    EXPECT_NEAR(stats.scale,
                static_cast<double>(nn::activation_absmax(original.data(), original.numel())) / levels,
                1e-9);
    EXPECT_LE(stats.max_abs_error, stats.scale * 0.5 + 1e-7);
    // Every surviving value sits on the 5-bit grid.
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        const double q = t.data()[i] / stats.scale;
        EXPECT_NEAR(q, std::nearbyint(q), 1e-3);
    }
    const double rel3 = nn::quantization_relative_error(original, 3);
    const double rel5 = nn::quantization_relative_error(original, 5);
    EXPECT_GT(rel3, rel5);
}

// ---------------------------------------------------------------------------
// Real int8 path (quantized planned executor building blocks)
// ---------------------------------------------------------------------------

TEST(QuantizeInt8, WeightsPerChannelRoundTrip) {
    Rng rng(11);
    Tensor w = Tensor::randn({8, 27}, rng);
    for (std::int64_t i = 0; i < 27; ++i) {
        w.data()[3 * 27 + i] = 0.0f;  // a pruned output channel
    }
    const auto q = nn::quantize_weights_per_channel(w);
    ASSERT_EQ(q.rows, 8);
    ASSERT_EQ(q.cols, 27);
    ASSERT_EQ(q.scales.size(), 8u);
    EXPECT_FALSE(q.empty());

    // Dead channel: scale 0, all-zero data -> dequantizes to exactly 0.
    EXPECT_EQ(q.scales[3], 0.0f);
    for (std::int64_t i = 0; i < 27; ++i) {
        EXPECT_EQ(q.data[3 * 27 + i], 0);
    }

    // Live channels reconstruct within half an LSB of their own scale.
    for (std::int64_t r = 0; r < 8; ++r) {
        if (r == 3) {
            continue;
        }
        EXPECT_GT(q.scales[r], 0.0f);
        for (std::int64_t i = 0; i < 27; ++i) {
            const float rec = static_cast<float>(q.data[r * 27 + i]) *
                              q.scales[static_cast<std::size_t>(r)];
            EXPECT_NEAR(w.data()[r * 27 + i], rec,
                        q.scales[static_cast<std::size_t>(r)] * 0.5f + 1e-7f);
            EXPECT_GE(q.data[r * 27 + i], -127);
        }
    }
    EXPECT_GT(q.max_rel_error, 0.0);
    EXPECT_LT(q.max_rel_error, 1.0 / 127.0);
}

TEST(QuantizeInt8, TransposeKeepsScalesPerOutputChannel) {
    Rng rng(12);
    const Tensor w = Tensor::randn({5, 9}, rng);
    const auto q = nn::quantize_weights_per_channel(w);
    const auto t = nn::transpose_quantized(q);
    ASSERT_EQ(t.rows, 9);
    ASSERT_EQ(t.cols, 5);
    EXPECT_EQ(t.scales, q.scales);  // still indexed by output channel
    EXPECT_EQ(t.max_rel_error, q.max_rel_error);
    for (std::int64_t r = 0; r < 5; ++r) {
        for (std::int64_t c = 0; c < 9; ++c) {
            EXPECT_EQ(t.data[c * 5 + r], q.data[r * 9 + c]);
        }
    }
}

TEST(QuantizeInt8, ActivationsDynamicScale) {
    Rng rng(13);
    const Tensor x = Tensor::randn({100}, rng);
    std::vector<std::int8_t> out(100);
    const float scale = nn::quantize_activations(x.data(), 100, out.data());
    EXPECT_NEAR(scale, nn::activation_absmax(x.data(), 100) / 127.0f, 1e-7f);
    for (std::int64_t i = 0; i < 100; ++i) {
        EXPECT_NEAR(x.data()[i], static_cast<float>(out[i]) * scale,
                    scale * 0.5f + 1e-7f);
    }

    // All-zero input: scale 0, zero bytes (dequantizes to exact 0).
    const std::vector<float> zeros(32, 0.0f);
    std::vector<std::int8_t> qz(32, 99);
    EXPECT_EQ(nn::quantize_activations(zeros.data(), 32, qz.data()), 0.0f);
    for (const std::int8_t v : qz) {
        EXPECT_EQ(v, 0);
    }
}

TEST(QuantizeInt8, SplitPhasesMatchFusedQuantize) {
    // activation_absmax + quantize_with_scale is the banding-friendly
    // decomposition of quantize_activations; both must produce the same
    // bytes (the executor relies on that for thread-count invariance).
    Rng rng(14);
    const Tensor x = Tensor::randn({77}, rng);  // odd count: vector + tail
    std::vector<std::int8_t> fused(77);
    const float scale = nn::quantize_activations(x.data(), 77, fused.data());

    const float absmax = nn::activation_absmax(x.data(), 77);
    EXPECT_GT(absmax, 0.0f);
    std::vector<std::int8_t> split(77);
    nn::quantize_with_scale(x.data(), 77, 127.0f / absmax, split.data());
    EXPECT_EQ(0, std::memcmp(fused.data(), split.data(), 77));
    EXPECT_NEAR(scale, absmax / 127.0f, 1e-9f);

    // inv_scale 0 (the all-zero-sample convention) zero-fills.
    std::vector<std::int8_t> z(77, 42);
    nn::quantize_with_scale(x.data(), 77, 0.0f, z.data());
    for (const std::int8_t v : z) {
        EXPECT_EQ(v, 0);
    }
}

TEST(QuantizeInt8, DequantizeAffine) {
    std::vector<std::int32_t> acc(19);
    for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = static_cast<std::int32_t>(i) * 100 - 900;
    }
    std::vector<float> out(19);
    nn::dequantize_affine(acc.data(), 19, 0.25f, 1.5f, out.data());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], static_cast<float>(acc[i]) * 0.25f + 1.5f);
    }
}

}  // namespace
}  // namespace mime
