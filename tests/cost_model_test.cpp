// Tests for cost-model-driven scheduling: the hardware-backed cost
// predictor (simulator pricing, online calibration), the pure
// autoscaler policy, predictive deadline feasibility in the batcher,
// plus regressions for this PR's bugfix sweep (zipf CDF sampling stays
// seed-stable, batch compaction preserves arrival order, the cache
// eviction guard drains overshoot after a capacity shrink).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "serve/autoscaler.h"
#include "serve/batcher.h"
#include "serve/cost_model.h"
#include "serve/load_gen.h"
#include "serve/threshold_cache.h"

namespace mime::serve {
namespace {

// ---------------------------------------------------------------------------
// Load generator: zipf CDF sampling (satellite bugfix 1)
// ---------------------------------------------------------------------------

/// The pre-CDF per-event linear scan, reproduced verbatim: rebuild the
/// partial sums, draw u against the total, stop at the first partial
/// sum >= u. The production path must stay bit-identical to this for
/// every existing seed.
std::int64_t zipf_linear_reference(Rng& rng, std::int64_t task_count,
                                   double s) {
    double total = 0.0;
    for (std::int64_t k = 1; k <= task_count; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k), s);
    }
    const double u = rng.uniform() * total;
    double cumulative = 0.0;
    for (std::int64_t k = 1; k <= task_count; ++k) {
        cumulative += 1.0 / std::pow(static_cast<double>(k), s);
        if (cumulative >= u) {
            return k - 1;
        }
    }
    return task_count - 1;
}

TEST(LoadGen, ZipfCdfSamplingBitMatchesLinearScanReference) {
    LoadSpec spec;
    spec.pattern = ArrivalPattern::skewed;
    spec.task_count = 17;
    spec.request_count = 2000;
    spec.zipf_s = 1.3;
    spec.seed = 42;

    const std::vector<ArrivalEvent> events = generate_arrivals(spec);
    ASSERT_EQ(events.size(), 2000u);

    // Replay the rng consumption of generate_arrivals: one uniform for
    // the zipf draw, one for the exponential interarrival gap.
    Rng rng(spec.seed);
    for (const ArrivalEvent& event : events) {
        EXPECT_EQ(event.task,
                  zipf_linear_reference(rng, spec.task_count, spec.zipf_s));
        rng.uniform();  // burn the interarrival draw
    }
}

TEST(LoadGen, ZipfStreamIsSkewedAndOrdered) {
    LoadSpec spec;
    spec.pattern = ArrivalPattern::skewed;
    spec.task_count = 8;
    spec.request_count = 4000;
    spec.zipf_s = 1.1;
    spec.seed = 7;

    const std::vector<ArrivalEvent> events = generate_arrivals(spec);
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].offset_us, events[i - 1].offset_us);
    }
    const std::vector<std::int64_t> histogram =
        task_histogram(events, spec.task_count);
    // Zipf rank 0 dominates the tail by construction.
    EXPECT_GT(histogram[0], histogram[7] * 2);
    std::int64_t total = 0;
    for (const std::int64_t count : histogram) {
        total += count;
    }
    EXPECT_EQ(total, spec.request_count);
}

// ---------------------------------------------------------------------------
// Batcher compaction order (satellite bugfix 2)
// ---------------------------------------------------------------------------

InferenceRequest make_request(
    std::int64_t id, const std::string& task, Clock::time_point enqueue_time,
    Clock::time_point deadline = Clock::time_point::max()) {
    InferenceRequest request;
    request.id = id;
    request.task = task;
    request.image = Tensor({3, 32, 32});
    request.enqueue_time = enqueue_time;
    request.deadline = deadline;
    return request;
}

std::vector<std::int64_t> batch_ids(
    const std::vector<InferenceRequest>& batch) {
    std::vector<std::int64_t> ids;
    ids.reserve(batch.size());
    for (const InferenceRequest& request : batch) {
        ids.push_back(request.id);
    }
    return ids;
}

TEST(TaskBatcher, CompactionPreservesArrivalOrderOfSurvivors) {
    // task_grouped pulls members from scattered positions; the requests
    // left behind must keep strict arrival order (the compaction is one
    // stable left-slide, not a reversed back-to-front erase).
    BatcherConfig config;
    config.policy = BatchingPolicy::task_grouped;
    config.max_batch_size = 8;
    config.max_wait = std::chrono::microseconds(0);  // always ready
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    batcher.add(make_request(0, "a", t0));
    batcher.add(make_request(1, "b", t0));
    batcher.add(make_request(2, "a", t0));
    batcher.add(make_request(3, "c", t0));
    batcher.add(make_request(4, "b", t0));
    batcher.add(make_request(5, "a", t0));
    batcher.add(make_request(6, "c", t0));

    auto first = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(batch_ids(*first), (std::vector<std::int64_t>{0, 2, 5}));

    // Survivors slid left in order: b1, c3, b4, c6 -> "b" batch next.
    auto second = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(batch_ids(*second), (std::vector<std::int64_t>{1, 4}));

    auto third = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(batch_ids(*third), (std::vector<std::int64_t>{3, 6}));
    EXPECT_TRUE(batcher.empty());
}

// ---------------------------------------------------------------------------
// ThresholdCache eviction guard (satellite bugfix 4)
// ---------------------------------------------------------------------------

core::TaskAdaptation synthetic_adaptation(const std::string& name) {
    core::TaskAdaptation adaptation;
    adaptation.name = name;
    adaptation.thresholds.task_name = name;
    adaptation.thresholds.thresholds = {Tensor({4}, 0.5f)};
    adaptation.head_weight = Tensor({10, 4});
    adaptation.head_bias = Tensor({10});
    adaptation.num_classes = 10;
    return adaptation;
}

TEST(ThresholdCache, ShrinkingCapacityDrainsOvershootOnNextGet) {
    ThresholdCache cache(4, [](const std::string& name) {
        return synthetic_adaptation(name);
    });
    cache.get("a");
    cache.get("b");
    cache.get("c");
    cache.get("d");
    EXPECT_EQ(cache.size(), 4u);

    // Shrinking does not evict immediately...
    cache.set_capacity(2);
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.capacity(), 2u);

    // ...but the next miss drains the whole overshoot. Under the old
    // `size == capacity` guard this get evicted exactly one entry and
    // the cache sat over capacity forever.
    cache.get("e");
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 3);
    EXPECT_TRUE(cache.contains("e"));
    EXPECT_TRUE(cache.contains("d"));  // most recent survivor

    // Steady state after the drain: normal LRU, one eviction per miss.
    cache.get("f");
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 4);
}

TEST(ThresholdCache, RejectsZeroCapacity) {
    ThresholdCache cache(2, [](const std::string& name) {
        return synthetic_adaptation(name);
    });
    EXPECT_THROW(cache.set_capacity(0), check_error);
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

std::vector<arch::LayerSpec> tiny_layers() {
    arch::LayerSpec conv;
    conv.name = "conv1";
    conv.kind = arch::LayerKind::conv;
    conv.in_channels = 3;
    conv.out_channels = 8;
    conv.kernel = 3;
    conv.padding = 1;
    conv.in_height = 8;
    conv.in_width = 8;

    arch::LayerSpec conv2 = conv;
    conv2.name = "conv2";
    conv2.in_channels = 8;
    conv2.out_channels = 8;

    arch::LayerSpec fc;
    fc.name = "fc";
    fc.kind = arch::LayerKind::fc;
    fc.in_channels = 8 * 8 * 8;
    fc.out_channels = 16;

    return {conv, conv2, fc};
}

TEST(CostModel, SimulatorPredictionIsMonotoneInBatchSize) {
    CostModel model(tiny_layers());
    const double one = model.predict_batch_us("t", 1);
    const double two = model.predict_batch_us("t", 2);
    const double four = model.predict_batch_us("t", 4);
    EXPECT_GT(one, 0.0);
    EXPECT_LT(one, two);
    EXPECT_LT(two, four);
    // Per-request share shrinks (or holds) as the expected batch grows:
    // that is the amortization least_loaded prices with.
    EXPECT_GE(model.predict_request_us("t", 1),
              model.predict_request_us("t", 4));
}

TEST(CostModel, SparserTasksPriceCheaperThanDense) {
    CostModel model(tiny_layers());
    model.set_task_sparsity("sparse", {0.9, 0.9, 0.9});
    model.set_task_sparsity("dense", {0.0, 0.0, 0.0});
    EXPECT_TRUE(model.has_task_profile("sparse"));

    const double sparse_us = model.predict_batch_us("sparse", 4);
    const double dense_us = model.predict_batch_us("dense", 4);
    EXPECT_LT(sparse_us, dense_us);
    EXPECT_LT(model.predict_batch_energy("sparse", 4),
              model.predict_batch_energy("dense", 4));

    // Unknown tasks price pessimistically at dense.
    EXPECT_FALSE(model.has_task_profile("never-seen"));
    EXPECT_EQ(model.predict_batch_us("never-seen", 4), dense_us);
}

TEST(CostModel, ClampsHostileSparsityObservations) {
    CostModel model(tiny_layers());
    // 1.0 (fully dead site), negatives and NaN must all be absorbed —
    // SparsityProfile itself rejects values outside [0, 1).
    model.set_task_sparsity(
        "hostile", {1.0, -0.5, std::nan("")});
    EXPECT_GT(model.predict_batch_us("hostile", 2), 0.0);
    // A short observation (one site) pads by repeating its last value.
    model.set_task_sparsity("short", {0.8});
    EXPECT_LT(model.predict_batch_us("short", 2),
              model.predict_batch_us("never-seen", 2));
}

TEST(CostModel, LinearFallbackPricesExactly) {
    CostModelConfig config;
    config.use_simulator = false;
    config.default_per_sample_us = 200.0;
    config.default_batch_overhead_us = 50.0;
    CostModel model(tiny_layers(), config);
    EXPECT_DOUBLE_EQ(model.predict_batch_us("t", 1), 250.0);
    EXPECT_DOUBLE_EQ(model.predict_batch_us("t", 4), 850.0);
    EXPECT_DOUBLE_EQ(model.predict_batch_energy("t", 4), 0.0);

    // An empty layer list cannot be priced by the simulator; the model
    // must quietly fall back instead of faulting on every predict.
    CostModel degenerate({});
    EXPECT_GT(degenerate.predict_batch_us("t", 1), 0.0);
}

TEST(CostModel, QuantizedMacScaleDiscountsComputeNotOverhead) {
    // Int8 replicas price their MAC work cheaper by the configured
    // throughput multiplier; dispatch overhead is unaffected.
    CostModelConfig config;
    config.use_simulator = false;
    config.default_per_sample_us = 200.0;
    config.default_batch_overhead_us = 50.0;
    config.quantized_mac_scale = 2.0;
    CostModel model(tiny_layers(), config);
    EXPECT_DOUBLE_EQ(model.predict_batch_us("t", 1), 150.0);
    EXPECT_DOUBLE_EQ(model.predict_batch_us("t", 4), 450.0);

    // Simulator path: the whole modeled compute scales down.
    CostModelConfig sim_config;
    sim_config.quantized_mac_scale = 1.5;
    CostModel quantized(tiny_layers(), sim_config);
    CostModel fp32(tiny_layers());
    EXPECT_NEAR(quantized.predict_batch_us("t", 4) * 1.5,
                fp32.predict_batch_us("t", 4),
                fp32.predict_batch_us("t", 4) * 1e-9);

    CostModelConfig bad;
    bad.quantized_mac_scale = 0.0;
    EXPECT_THROW(CostModel(tiny_layers(), bad), check_error);
}

TEST(CostModel, CalibrationConvergesOnObservedServiceTimes) {
    CostModelConfig config;
    config.use_simulator = false;
    config.default_per_sample_us = 100.0;
    config.default_batch_overhead_us = 0.0;
    CostModel model(tiny_layers(), config);

    // The replica consistently measures 2.5x the base model.
    ASSERT_DOUBLE_EQ(model.predict_batch_us("t", 1), 100.0);
    CostFeedback feedback{};
    for (int i = 0; i < 40; ++i) {
        feedback = model.observe_batch("t", 1, 250.0);
    }
    EXPECT_EQ(model.observation_count(), 40);
    // Scale has converged near measured/base and the blended prediction
    // lands on the observed time.
    EXPECT_NEAR(model.calibration_scale(), 2.5, 0.1);
    EXPECT_NEAR(model.predict_batch_us("t", 1), 250.0, 5.0);
    // The last feedback's prediction was already close, so its error is
    // small even though the first observations were 60% off.
    EXPECT_LT(feedback.abs_relative_error, 0.05);
    EXPECT_GT(model.mean_abs_relative_error(), 0.0);

    // Calibration generalizes to shapes never observed: batch 4 is
    // scaled by the learned factor, not stuck at the base model.
    EXPECT_GT(model.predict_batch_us("t", 4), 2.0 * 400.0);
}

TEST(CostModel, CalibrationScaleIsClampedAndIgnoresBadSamples) {
    CostModelConfig config;
    config.use_simulator = false;
    config.default_per_sample_us = 1.0;
    config.default_batch_overhead_us = 0.0;
    config.calibration_alpha = 1.0;  // jump straight to each ratio
    config.max_calibration_scale = 10.0;
    CostModel model(tiny_layers(), config);

    // A wild measurement (plan warm-up page fault) cannot poison the
    // scale past the clamp.
    model.observe_batch("t", 1, 1e9);
    EXPECT_DOUBLE_EQ(model.calibration_scale(), 10.0);

    // Non-positive measurements are clock glitches: no calibration, no
    // error accounting.
    const std::int64_t before = model.observation_count();
    model.observe_batch("t", 1, 0.0);
    model.observe_batch("t", 1, -5.0);
    EXPECT_EQ(model.observation_count(), before);
    EXPECT_DOUBLE_EQ(model.calibration_scale(), 10.0);
}

// Regression for the capability-annotation audit: one model is shared
// by every replica's dispatch thread (calibrating), the pool's submit
// path (pricing) and sparsity installs — all serialized on the model's
// internal mutex. Hammer all three concurrently; afterwards the
// bookkeeping must be exact and the scale inside its clamps. Runs
// under ThreadSanitizer in CI.
TEST(CostModel, ConcurrentCalibrateAndPredictStayCoherent) {
    CostModelConfig config;
    config.use_simulator = false;
    config.default_per_sample_us = 100.0;
    config.default_batch_overhead_us = 10.0;
    CostModel model(tiny_layers(), config);

    constexpr int kCalibrators = 3;
    constexpr int kObservationsEach = 500;
    constexpr int kPredictors = 3;

    std::atomic<bool> stop_predicting{false};
    std::atomic<bool> saw_bad_prediction{false};
    std::vector<std::thread> threads;
    threads.reserve(kCalibrators + kPredictors + 1);

    for (int t = 0; t < kCalibrators; ++t) {
        threads.emplace_back([&model, t] {
            const std::string task = "task" + std::to_string(t);
            for (int i = 0; i < kObservationsEach; ++i) {
                model.observe_batch(task, 1 + i % 4, 250.0);
            }
        });
    }
    for (int t = 0; t < kPredictors; ++t) {
        threads.emplace_back([&] {
            while (!stop_predicting.load()) {
                const double batch_us = model.predict_batch_us("task0", 4);
                const double request_us =
                    model.predict_request_us("task1", 4);
                if (!(batch_us > 0.0) || !(request_us > 0.0)) {
                    saw_bad_prediction.store(true);
                }
            }
        });
    }
    threads.emplace_back([&model, &stop_predicting] {
        int i = 0;
        while (!stop_predicting.load()) {
            const double s = 0.1 * static_cast<double>(i++ % 9);
            model.set_task_sparsity("task0", {s, s, s});
        }
    });

    for (int t = 0; t < kCalibrators; ++t) {
        threads[static_cast<std::size_t>(t)].join();
    }
    stop_predicting.store(true);
    for (std::size_t t = kCalibrators; t < threads.size(); ++t) {
        threads[t].join();
    }

    EXPECT_FALSE(saw_bad_prediction.load());
    // No observation lost or double-counted under contention.
    EXPECT_EQ(model.observation_count(),
              static_cast<std::int64_t>(kCalibrators) * kObservationsEach);
    EXPECT_GE(model.calibration_scale(), config.min_calibration_scale);
    EXPECT_LE(model.calibration_scale(), config.max_calibration_scale);
    EXPECT_GT(model.mean_abs_relative_error(), 0.0);
}

// ---------------------------------------------------------------------------
// ReplicaAutoscaler policy
// ---------------------------------------------------------------------------

AutoscalerConfig scaler_config() {
    AutoscalerConfig config;
    config.enabled = true;
    config.min_replicas = 1;
    config.max_replicas = 4;
    config.grow_backlog_us = 1000.0;
    config.shrink_backlog_us = 100.0;
    config.grow_patience = 2;
    config.shrink_patience = 3;
    return config;
}

TEST(ReplicaAutoscaler, GrowNeedsPatienceAndRespectsMax) {
    ReplicaAutoscaler scaler(scaler_config());
    EXPECT_EQ(scaler.step(5000.0, 0, 1), 0);  // streak 1 of 2
    EXPECT_EQ(scaler.step(5000.0, 0, 1), 1);  // streak 2 -> grow
    // Saturated at max_replicas: pressure can no longer grow.
    EXPECT_EQ(scaler.step(5000.0, 0, 4), 0);
    EXPECT_EQ(scaler.step(5000.0, 0, 4), 0);
}

TEST(ReplicaAutoscaler, AdmissionShedsCountAsPressure) {
    ReplicaAutoscaler scaler(scaler_config());
    // Backlog is calm but admission shed work since the last tick: the
    // pool is refusing requests, which is the strongest grow signal.
    EXPECT_EQ(scaler.step(0.0, 3, 1), 0);
    EXPECT_EQ(scaler.step(0.0, 2, 1), 1);
}

TEST(ReplicaAutoscaler, ShrinkNeedsPatienceAndRespectsMin) {
    ReplicaAutoscaler scaler(scaler_config());
    EXPECT_EQ(scaler.step(0.0, 0, 3), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 3), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 3), -1);  // third calm tick -> shrink
    // At the floor an idle pool holds.
    EXPECT_EQ(scaler.step(0.0, 0, 1), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 1), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 1), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 1), 0);
}

TEST(ReplicaAutoscaler, HysteresisBandResetsShrinkStreak) {
    ReplicaAutoscaler scaler(scaler_config());
    EXPECT_EQ(scaler.step(0.0, 0, 2), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 2), 0);
    // Mid-band tick (between shrink and grow thresholds): no decision,
    // and the shrink streak starts over — the pool must not flap on a
    // backlog hovering at the shrink line.
    EXPECT_EQ(scaler.step(500.0, 0, 2), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 2), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 2), 0);
    EXPECT_EQ(scaler.step(0.0, 0, 2), -1);
}

TEST(ReplicaAutoscaler, MemoryBudgetBlocksGrowsAndCounts) {
    AutoscalerConfig config = scaler_config();
    config.grow_patience = 1;
    config.memory_budget_bytes = 1000;
    ReplicaAutoscaler scaler(config);

    // Activating a second 600-byte replica would cost 1200 > 1000.
    EXPECT_EQ(scaler.step(5000.0, 0, 1, 600), 0);
    EXPECT_EQ(scaler.budget_blocked(), 1);
    // A 400-byte replica fits: 2 * 400 <= 1000.
    EXPECT_EQ(scaler.step(5000.0, 0, 1, 400), 1);
    EXPECT_EQ(scaler.budget_blocked(), 1);
    // Unknown replica cost (0) is never budget-blocked.
    EXPECT_EQ(scaler.step(5000.0, 0, 2, 0), 1);
}

TEST(ReplicaAutoscaler, RejectsDegenerateConfigs) {
    AutoscalerConfig zero_min = scaler_config();
    zero_min.min_replicas = 0;
    EXPECT_THROW(ReplicaAutoscaler{zero_min}, check_error);

    AutoscalerConfig inverted = scaler_config();
    inverted.max_replicas = 0;
    EXPECT_THROW(ReplicaAutoscaler{inverted}, check_error);

    AutoscalerConfig no_band = scaler_config();
    no_band.shrink_backlog_us = no_band.grow_backlog_us;
    EXPECT_THROW(ReplicaAutoscaler{no_band}, check_error);
}

// ---------------------------------------------------------------------------
// Predictive deadline feasibility in the batcher (tentpole wiring)
// ---------------------------------------------------------------------------

BatcherConfig costed_batcher(double per_member_us) {
    BatcherConfig config;
    config.policy = BatchingPolicy::task_grouped;
    config.max_batch_size = 8;
    config.max_wait = std::chrono::microseconds(0);
    config.predict_batch_us = [per_member_us](const std::string&,
                                              std::int64_t batch) {
        return per_member_us * static_cast<double>(batch);
    };
    return config;
}

TEST(TaskBatcher, ShedsPredictedInfeasibleRequestsAtReapTime) {
    // Every batch costs 1 second per member; a 1 ms deadline can never
    // be met, so the request is shed before it occupies a forward.
    TaskBatcher batcher(costed_batcher(1'000'000.0));
    const auto now = Clock::now();
    batcher.add(make_request(0, "a", now,
                             now + std::chrono::milliseconds(1)));

    const BatchResult result = batcher.next_batch(now);
    EXPECT_FALSE(result.batch.has_value());
    ASSERT_EQ(result.reaped.size(), 1u);
    EXPECT_EQ(result.reaped[0].status, ServeStatus::deadline_exceeded);
    EXPECT_TRUE(result.reaped[0].predicted_infeasible);
    EXPECT_TRUE(batcher.empty());
}

TEST(TaskBatcher, FeasibleDeadlinesAreNotShedPredictively) {
    TaskBatcher batcher(costed_batcher(100.0));  // 100 us per member
    const auto now = Clock::now();
    batcher.add(make_request(0, "a", now, now + std::chrono::seconds(1)));

    const BatchResult result = batcher.next_batch(now);
    ASSERT_TRUE(result.batch.has_value());
    EXPECT_EQ(result.batch->size(), 1u);
    EXPECT_TRUE(result.reaped.empty());
}

TEST(TaskBatcher, JoinRefusalKeepsBatchFeasibleForItsMembers) {
    // 600 us per member: any member alone fits a 1 ms deadline, two
    // together (1200 us) do not. The batch must go out solo and the
    // refused candidate must stay pending, not be dropped.
    TaskBatcher batcher(costed_batcher(600.0));
    const auto now = Clock::now();
    const auto deadline = now + std::chrono::milliseconds(1);
    batcher.add(make_request(0, "a", now, deadline));
    batcher.add(make_request(1, "a", now, deadline));
    // No-deadline candidate: joining would still break member 0's
    // deadline, so it too must wait for the next batch.
    batcher.add(make_request(2, "a", now));

    const BatchResult first = batcher.next_batch(now);
    ASSERT_TRUE(first.batch.has_value());
    EXPECT_EQ(batch_ids(*first.batch), (std::vector<std::int64_t>{0}));
    EXPECT_TRUE(first.reaped.empty());
    EXPECT_EQ(batcher.pending_count(), 2u);

    const BatchResult second = batcher.next_batch(now);
    ASSERT_TRUE(second.batch.has_value());
    EXPECT_EQ(batch_ids(*second.batch), (std::vector<std::int64_t>{1}));

    // The no-deadline straggler rides the last batch unconstrained.
    const BatchResult third = batcher.next_batch(now);
    ASSERT_TRUE(third.batch.has_value());
    EXPECT_EQ(batch_ids(*third.batch), (std::vector<std::int64_t>{2}));
    EXPECT_TRUE(batcher.empty());
}

TEST(TaskBatcher, LooseDeadlinesStillBatchTogether) {
    TaskBatcher batcher(costed_batcher(100.0));
    const auto now = Clock::now();
    const auto deadline = now + std::chrono::seconds(1);
    for (std::int64_t i = 0; i < 4; ++i) {
        batcher.add(make_request(i, "a", now, deadline));
    }
    const BatchResult result = batcher.next_batch(now);
    ASSERT_TRUE(result.batch.has_value());
    EXPECT_EQ(result.batch->size(), 4u);  // 400 us fits 1 s easily
}

}  // namespace
}  // namespace mime::serve
