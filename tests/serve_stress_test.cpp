// Deterministic concurrency stress tests for the serving runtime's
// shared structures: multi-producer hammering of the bounded
// RequestQueue (no request may be lost or duplicated, FIFO per
// producer), close() racing active producers (accepted + rejected must
// account for every push), and a seeded property hammering of the
// ThresholdCache against a reference LRU model (hit/miss/evict
// accounting must stay consistent at every step). Thread counts and
// seeds are fixed so failures reproduce; these are the binaries the CI
// ThreadSanitizer job runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "serve/request_queue.h"
#include "serve/threshold_cache.h"

namespace mime::serve {
namespace {

// Static task-name table rather than "t" + std::to_string(i): string
// concatenation here trips a GCC 12 -Wrestrict false positive
// (GCC PR105329) under -O3.
const char* task_name(std::uint64_t index) {
    static const char* const kNames[] = {"t0", "t1", "t2", "t3", "t4",
                                         "t5", "t6", "t7", "t8"};
    return kNames[index % (sizeof(kNames) / sizeof(kNames[0]))];
}

InferenceRequest make_request(std::int64_t id) {
    InferenceRequest request;
    request.id = id;
    request.task = task_name(static_cast<std::uint64_t>(id) % 7);
    request.enqueue_time = Clock::now();
    return request;
}

// ---------------------------------------------------------------------------
// RequestQueue under multi-producer load
// ---------------------------------------------------------------------------

TEST(RequestQueueStress, NoLostOrDuplicatedRequests) {
    constexpr std::int64_t kProducers = 8;
    constexpr std::int64_t kPerProducer = 400;
    constexpr std::int64_t kTotal = kProducers * kPerProducer;
    // Tiny capacity so producers constantly hit backpressure.
    RequestQueue queue(16);

    std::vector<std::thread> producers;
    for (std::int64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
            for (std::int64_t i = 0; i < kPerProducer; ++i) {
                // Ids partition by producer: producer p owns
                // [p*kPerProducer, (p+1)*kPerProducer).
                ASSERT_TRUE(queue.push(make_request(p * kPerProducer + i)));
            }
        });
    }

    std::vector<std::int64_t> seen_count(
        static_cast<std::size_t>(kTotal), 0);
    std::vector<std::int64_t> last_seen(
        static_cast<std::size_t>(kProducers), -1);
    std::int64_t received = 0;
    while (received < kTotal) {
        const auto drained = queue.drain_until(
            Clock::now() + std::chrono::milliseconds(100));
        for (const InferenceRequest& request : drained) {
            ASSERT_GE(request.id, 0);
            ASSERT_LT(request.id, kTotal);
            ++seen_count[static_cast<std::size_t>(request.id)];
            // FIFO per producer: ids within one producer's partition
            // must arrive in submission order.
            const std::int64_t producer = request.id / kPerProducer;
            ASSERT_GT(request.id,
                      last_seen[static_cast<std::size_t>(producer)]);
            last_seen[static_cast<std::size_t>(producer)] = request.id;
        }
        received += static_cast<std::int64_t>(drained.size());
    }
    for (std::thread& producer : producers) {
        producer.join();
    }

    EXPECT_EQ(received, kTotal);
    for (std::int64_t id = 0; id < kTotal; ++id) {
        ASSERT_EQ(seen_count[static_cast<std::size_t>(id)], 1)
            << "request " << id << " lost or duplicated";
    }
    EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueStress, CloseRacingProducersLosesNothingAccepted) {
    constexpr std::int64_t kProducers = 6;
    constexpr std::int64_t kPerProducer = 300;
    RequestQueue queue(32);

    std::atomic<std::int64_t> accepted{0};
    std::atomic<std::int64_t> rejected{0};
    std::vector<std::thread> producers;
    for (std::int64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (std::int64_t i = 0; i < kPerProducer; ++i) {
                if (queue.push(make_request(p * kPerProducer + i))) {
                    ++accepted;
                } else {
                    ++rejected;
                }
            }
        });
    }

    // Drain some traffic, then slam the door while producers still run.
    std::int64_t drained_before_close = 0;
    while (drained_before_close < kProducers * kPerProducer / 4) {
        drained_before_close += static_cast<std::int64_t>(
            queue
                .drain_until(Clock::now() +
                             std::chrono::milliseconds(20))
                .size());
    }
    queue.close();
    for (std::thread& producer : producers) {
        producer.join();
    }
    // Everything accepted before close stays drainable; nothing beyond.
    const std::int64_t drained_after_close =
        static_cast<std::int64_t>(queue.drain_now().size());

    EXPECT_EQ(accepted.load() + rejected.load(),
              kProducers * kPerProducer);
    EXPECT_EQ(drained_before_close + drained_after_close, accepted.load());
    EXPECT_FALSE(queue.push(make_request(0)));
}

// ---------------------------------------------------------------------------
// ThresholdCache accounting vs a reference LRU model
// ---------------------------------------------------------------------------

core::TaskAdaptation tiny_adaptation(const std::string& name) {
    core::TaskAdaptation adaptation;
    adaptation.name = name;
    adaptation.thresholds.task_name = name;
    adaptation.thresholds.thresholds = {Tensor({2}, 0.5f)};
    adaptation.head_weight = Tensor({4, 2});
    adaptation.head_bias = Tensor({4});
    adaptation.num_classes = 4;
    return adaptation;
}

TEST(ThresholdCacheStress, SeededHammeringMatchesReferenceLru) {
    constexpr std::size_t kCapacity = 4;
    constexpr std::int64_t kTasks = 11;
    constexpr std::int64_t kOps = 5000;

    std::int64_t loader_calls = 0;
    ThresholdCache cache(kCapacity, [&loader_calls](const std::string& name) {
        ++loader_calls;
        return tiny_adaptation(name);
    });

    // Reference model: most-recent-first list of resident task names.
    std::vector<std::string> model;
    std::int64_t model_hits = 0;
    std::int64_t model_misses = 0;
    std::int64_t model_evictions = 0;

    Rng rng(0xfeedULL);
    for (std::int64_t op = 0; op < kOps; ++op) {
        const std::string task =
            "task" + std::to_string(rng.uniform_index(kTasks));
        const core::TaskAdaptation& adaptation = cache.get(task);
        ASSERT_EQ(adaptation.name, task);

        const auto found = std::find(model.begin(), model.end(), task);
        if (found != model.end()) {
            ++model_hits;
            model.erase(found);
        } else {
            ++model_misses;
            if (model.size() == kCapacity) {
                model.pop_back();
                ++model_evictions;
            }
        }
        model.insert(model.begin(), task);

        // Full accounting must agree with the model after every op.
        ASSERT_EQ(cache.hits(), model_hits);
        ASSERT_EQ(cache.misses(), model_misses);
        ASSERT_EQ(cache.evictions(), model_evictions);
        ASSERT_LE(cache.size(), kCapacity);
        ASSERT_EQ(cache.resident_tasks(), model);
    }

    // Conservation laws over the whole run.
    EXPECT_EQ(cache.hits() + cache.misses(), kOps);
    EXPECT_EQ(loader_calls, cache.misses());
    EXPECT_EQ(cache.evictions(),
              cache.misses() - static_cast<std::int64_t>(cache.size()));
}

// ---------------------------------------------------------------------------
// Queue + cache combined: producer/consumer pipeline with accounting
// ---------------------------------------------------------------------------

TEST(ServeStress, ProducerConsumerPipelineKeepsAccountsConsistent) {
    // The real dispatch topology in miniature: N producers feed the
    // bounded queue, one consumer drains and touches the (dispatch-
    // thread-only) cache per request. All accounting must reconcile.
    constexpr std::int64_t kProducers = 4;
    constexpr std::int64_t kPerProducer = 500;
    constexpr std::int64_t kTotal = kProducers * kPerProducer;
    RequestQueue queue(24);
    ThresholdCache cache(3, [](const std::string& name) {
        return tiny_adaptation(name);
    });

    std::vector<std::thread> producers;
    for (std::int64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
            Rng rng(static_cast<std::uint64_t>(1000 + p));
            for (std::int64_t i = 0; i < kPerProducer; ++i) {
                InferenceRequest request;
                request.id = p * kPerProducer + i;
                request.task = task_name(rng.uniform_index(9));
                ASSERT_TRUE(queue.push(std::move(request)));
            }
        });
    }

    std::map<std::string, std::int64_t> served_per_task;
    std::int64_t served = 0;
    while (served < kTotal) {
        for (InferenceRequest& request : queue.drain_until(
                 Clock::now() + std::chrono::milliseconds(100))) {
            const core::TaskAdaptation& adaptation =
                cache.get(request.task);
            ASSERT_EQ(adaptation.name, request.task);
            ++served_per_task[request.task];
            ++served;
        }
    }
    for (std::thread& producer : producers) {
        producer.join();
    }

    EXPECT_EQ(served, kTotal);
    std::int64_t per_task_sum = 0;
    for (const auto& [task, count] : served_per_task) {
        per_task_sum += count;
    }
    EXPECT_EQ(per_task_sum, kTotal);
    EXPECT_EQ(cache.hits() + cache.misses(), kTotal);
    EXPECT_EQ(cache.evictions(),
              cache.misses() - static_cast<std::int64_t>(cache.size()));
}

}  // namespace
}  // namespace mime::serve
