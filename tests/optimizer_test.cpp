// Tests for SGD / Adam and the trainable-flag freezing mechanism.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "nn/optimizer.h"

namespace mime::nn {
namespace {

/// Minimizes f(x) = 0.5 * ||x - target||^2 with the given optimizer.
template <typename Opt, typename... Args>
float optimize_quadratic(int steps, Args&&... args) {
    Parameter p("x", Tensor({4}, std::vector<float>{5, -3, 2, 8}));
    const Tensor target({4}, std::vector<float>{1, 1, 1, 1});
    Opt opt({&p}, std::forward<Args>(args)...);
    for (int i = 0; i < steps; ++i) {
        opt.zero_grad();
        for (std::int64_t j = 0; j < 4; ++j) {
            p.grad[j] = p.value[j] - target[j];
        }
        opt.step();
    }
    float err = 0.0f;
    for (std::int64_t j = 0; j < 4; ++j) {
        err += std::abs(p.value[j] - target[j]);
    }
    return err;
}

TEST(Sgd, ConvergesOnQuadratic) {
    EXPECT_LT(optimize_quadratic<Sgd>(200, 0.1f), 1e-3f);
}

TEST(Sgd, MomentumConverges) {
    EXPECT_LT(optimize_quadratic<Sgd>(200, 0.05f, 0.9f), 1e-3f);
}

TEST(Adam, ConvergesOnQuadratic) {
    EXPECT_LT(optimize_quadratic<Adam>(500, 0.05f), 1e-2f);
}

TEST(Adam, StepCountAdvances) {
    Parameter p("x", Tensor({1}));
    Adam adam({&p});
    EXPECT_EQ(adam.step_count(), 0);
    adam.step();
    adam.step();
    EXPECT_EQ(adam.step_count(), 2);
}

TEST(Optimizer, FrozenParameterUntouched) {
    Parameter frozen("w", Tensor({2}, std::vector<float>{1, 2}));
    frozen.trainable = false;
    Parameter live("t", Tensor({2}, std::vector<float>{1, 2}));
    Adam adam({&frozen, &live}, 0.5f);
    frozen.grad.fill(1.0f);
    live.grad.fill(1.0f);
    adam.step();
    EXPECT_FLOAT_EQ(frozen.value[0], 1.0f);
    EXPECT_FLOAT_EQ(frozen.value[1], 2.0f);
    EXPECT_NE(live.value[0], 1.0f);
}

TEST(Optimizer, ZeroGradClearsAll) {
    Parameter a("a", Tensor({2}));
    Parameter b("b", Tensor({3}));
    a.grad.fill(4.0f);
    b.grad.fill(-1.0f);
    Sgd sgd({&a, &b}, 0.1f);
    sgd.zero_grad();
    EXPECT_EQ(sum(a.grad), 0.0f);
    EXPECT_EQ(sum(b.grad), 0.0f);
}

TEST(Optimizer, RejectsNullParameter) {
    EXPECT_THROW(Sgd({nullptr}, 0.1f), mime::check_error);
}

TEST(Optimizer, RejectsBadHyperparameters) {
    Parameter p("x", Tensor({1}));
    EXPECT_THROW(Sgd({&p}, -1.0f), mime::check_error);
    EXPECT_THROW(Sgd({&p}, 0.1f, 1.5f), mime::check_error);
    EXPECT_THROW(Adam({&p}, 0.1f, 1.0f), mime::check_error);
    EXPECT_THROW(Adam({&p}, 0.1f, 0.9f, 1.0f), mime::check_error);
}

TEST(Sgd, WeightDecayShrinksWeights) {
    Parameter p("x", Tensor({1}, std::vector<float>{10.0f}));
    Sgd sgd({&p}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
    // Zero loss gradient: only decay acts.
    sgd.zero_grad();
    sgd.step();
    EXPECT_LT(p.value[0], 10.0f);
}

TEST(Adam, BiasCorrectionMakesFirstStepLearningRateSized) {
    Parameter p("x", Tensor({1}, std::vector<float>{0.0f}));
    Adam adam({&p}, 0.1f);
    p.grad[0] = 1.0f;
    adam.step();
    // With bias correction the first step is ~lr regardless of gradient
    // scale.
    EXPECT_NEAR(p.value[0], -0.1f, 1e-5f);
}

}  // namespace
}  // namespace mime::nn
