// Tests for persistent module buffers (BatchNorm running statistics):
// serialization, backbone snapshots, and frozen-backbone semantics.
// These pin the regression where a saved-and-reloaded parent model lost
// its BatchNorm statistics and collapsed to chance accuracy.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "core/trainer.h"
#include "data/task_suite.h"
#include "nn/batchnorm.h"
#include "nn/serialize.h"

namespace mime {
namespace {

core::MimeNetworkConfig bn_config(std::uint64_t seed = 17) {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.batchnorm = true;
    config.seed = seed;
    return config;
}

data::Dataset small_data() {
    data::TaskSuiteOptions options;
    options.train_size = 64;
    options.test_size = 64;
    options.cifar100_classes = 10;
    const auto suite = data::make_task_suite(options);
    return suite.family->test_split(suite.cifar10_like);
}

TEST(Buffers, BatchNormExposesRunningStats) {
    nn::BatchNorm2d bn(4);
    const auto buffers = bn.buffers();
    ASSERT_EQ(buffers.size(), 2u);
    EXPECT_EQ(buffers[0]->name, "running_mean");
    EXPECT_EQ(buffers[1]->name, "running_var");
    EXPECT_FALSE(buffers[0]->trainable);
    EXPECT_FALSE(buffers[1]->trainable);
}

TEST(Buffers, SequentialAggregatesBuffers) {
    nn::Sequential seq;
    seq.emplace<nn::BatchNorm2d>(4);
    seq.emplace<nn::BatchNorm2d>(8);
    EXPECT_EQ(seq.buffers().size(), 4u);
    EXPECT_EQ(seq.parameters().size(), 4u);  // gamma/beta only
}

TEST(Buffers, SerializationCarriesRunningStats) {
    core::MimeNetwork trained(bn_config(1));
    core::MimeNetwork fresh(bn_config(2));

    // Drive the running stats away from their defaults.
    Rng rng(3);
    trained.set_training(true);
    trained.forward(Tensor::randn({8, 3, 32, 32}, rng, 5.0f, 2.0f));

    std::stringstream buffer;
    nn::save_parameters(trained.network(), buffer);
    nn::load_parameters(fresh.network(), buffer);

    const auto src = trained.network().buffers();
    const auto dst = fresh.network().buffers();
    ASSERT_EQ(src.size(), dst.size());
    ASSERT_FALSE(src.empty());
    for (std::size_t i = 0; i < src.size(); ++i) {
        for (std::int64_t j = 0; j < src[i]->value.numel(); ++j) {
            ASSERT_EQ(src[i]->value[j], dst[i]->value[j]) << src[i]->name;
        }
    }
}

TEST(Buffers, ReloadedModelPredictsIdentically) {
    // The regression test proper: eval-mode predictions must survive a
    // save/load round trip bit-for-bit (BN inference mode uses the
    // running stats that previously went missing).
    core::MimeNetwork a(bn_config(1));
    Rng rng(4);
    a.set_training(true);
    a.forward(Tensor::randn({8, 3, 32, 32}, rng, 1.0f, 3.0f));

    core::MimeNetwork b(bn_config(2));
    std::stringstream buffer;
    nn::save_parameters(a.network(), buffer);
    nn::load_parameters(b.network(), buffer);

    a.set_training(false);
    b.set_training(false);
    const Tensor probe = Tensor::randn({4, 3, 32, 32}, rng);
    const Tensor logits_a = a.forward(probe);
    const Tensor logits_b = b.forward(probe);
    for (std::int64_t i = 0; i < logits_a.numel(); ++i) {
        ASSERT_EQ(logits_a[i], logits_b[i]);
    }
}

TEST(Buffers, BackboneSnapshotIncludesRunningStats) {
    core::MimeNetwork net(bn_config());
    Rng rng(5);
    net.set_training(true);
    net.forward(Tensor::randn({8, 3, 32, 32}, rng, 2.0f, 1.0f));
    const auto snapshot = net.snapshot_backbone();

    // Disturb the stats, restore, verify.
    net.forward(Tensor::randn({8, 3, 32, 32}, rng, -3.0f, 5.0f));
    const float disturbed = net.network().buffers()[0]->value[0];
    net.load_backbone(snapshot);
    const float restored = net.network().buffers()[0]->value[0];
    EXPECT_NE(disturbed, restored);

    // Eval predictions match the snapshot state exactly.
    net.set_training(false);
    const Tensor probe = Tensor::randn({2, 3, 32, 32}, rng);
    const Tensor before = net.forward(probe);
    net.load_backbone(snapshot);
    const Tensor after = net.forward(probe);
    for (std::int64_t i = 0; i < before.numel(); ++i) {
        ASSERT_EQ(before[i], after[i]);
    }
}

TEST(Buffers, FrozenBackboneFreezesBatchNormStats) {
    core::MimeNetwork net(bn_config());
    Rng rng(6);
    net.set_training(true);
    net.forward(Tensor::randn({8, 3, 32, 32}, rng));
    net.freeze_backbone(true);

    const float mean_before = net.network().buffers()[0]->value[0];
    // Training-mode forwards (as in threshold training) must not move
    // the frozen running statistics.
    net.set_training(true);
    net.set_mode(core::ActivationMode::threshold);
    net.forward(Tensor::randn({8, 3, 32, 32}, rng, 10.0f, 4.0f));
    const float mean_after = net.network().buffers()[0]->value[0];
    EXPECT_EQ(mean_before, mean_after);

    // Unfreezing restores normal training-mode statistics updates.
    net.freeze_backbone(false);
    net.set_training(true);
    net.forward(Tensor::randn({8, 3, 32, 32}, rng, 10.0f, 4.0f));
    EXPECT_NE(net.network().buffers()[0]->value[0], mean_after);
}

TEST(Buffers, ThresholdTrainingLeavesStatsUntouched) {
    core::MimeNetwork net(bn_config());
    const auto data = small_data();
    core::TrainOptions options;
    options.epochs = 1;
    options.batch_size = 32;

    const auto before = net.snapshot_backbone();
    core::train_thresholds(net, data, options);
    const auto after = net.snapshot_backbone();
    // Everything except the (intentionally trainable) classifier head is
    // bit-identical — including the BN buffers at the end.
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        const bool is_head = before[i].shape() == Shape({10, 32}) ||
                             before[i].shape() == Shape({10});
        if (is_head) {
            continue;
        }
        for (std::int64_t j = 0; j < before[i].numel(); ++j) {
            ASSERT_EQ(before[i][j], after[i][j]) << "snapshot entry " << i;
        }
    }
}

TEST(Buffers, NonBatchNormNetworksHaveNone) {
    core::MimeNetworkConfig config = bn_config();
    config.batchnorm = false;
    core::MimeNetwork net(config);
    EXPECT_TRUE(net.network().buffers().empty());
}

}  // namespace
}  // namespace mime
