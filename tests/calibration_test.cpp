// Tests for percentile-based threshold calibration (the training-free
// extension to the paper's learned thresholds).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/calibration.h"
#include "core/sparsity.h"
#include "data/task_suite.h"

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config() {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 31;
    return config;
}

struct Fixture {
    data::TaskSuite suite;
    data::Dataset test;
    data::Batch calibration;

    Fixture() {
        data::TaskSuiteOptions options;
        options.train_size = 96;
        options.test_size = 96;
        options.cifar100_classes = 10;
        suite = data::make_task_suite(options);
        test = suite.family->test_split(suite.cifar10_like);
        calibration = suite.family->train_split(suite.cifar10_like).head(64);
    }
};

TEST(Calibration, HitsTargetSparsityOnCalibrationBatch) {
    Fixture f;
    MimeNetwork net(tiny_config());
    CalibrationOptions options;
    options.target_sparsity = 0.6;
    options.floor = -1e9f;  // no clamping: percentile should be exact
    const auto achieved = calibrate_thresholds(net, f.calibration, options);
    ASSERT_EQ(achieved.size(), 15u);
    for (const double s : achieved) {
        EXPECT_NEAR(s, 0.6, 0.05);
    }
}

TEST(Calibration, GeneralizesToHeldOutData) {
    Fixture f;
    MimeNetwork net(tiny_config());
    CalibrationOptions options;
    options.target_sparsity = 0.55;
    calibrate_thresholds(net, f.calibration, options);

    net.set_mode(ActivationMode::threshold);
    const auto report = measure_sparsity(net, f.test, 32);
    // Held-out sparsity tracks the target loosely (per-neuron percentile
    // over 64 samples is a noisy estimator).
    EXPECT_NEAR(report.overall(), 0.55, 0.12);
}

TEST(Calibration, PerLayerGranularityAlsoHitsTarget) {
    Fixture f;
    MimeNetwork net(tiny_config());
    CalibrationOptions options;
    options.target_sparsity = 0.5;
    options.granularity = CalibrationGranularity::per_layer;
    options.floor = -1e9f;
    const auto achieved = calibrate_thresholds(net, f.calibration, options);
    for (const double s : achieved) {
        EXPECT_NEAR(s, 0.5, 0.03);
    }
}

TEST(Calibration, HigherTargetGivesHigherSparsity) {
    Fixture f;
    MimeNetwork low_net(tiny_config());
    MimeNetwork high_net(tiny_config());
    CalibrationOptions low;
    low.target_sparsity = 0.3;
    CalibrationOptions high;
    high.target_sparsity = 0.8;
    calibrate_thresholds(low_net, f.calibration, low);
    calibrate_thresholds(high_net, f.calibration, high);

    low_net.set_mode(ActivationMode::threshold);
    high_net.set_mode(ActivationMode::threshold);
    const auto low_report = measure_sparsity(low_net, f.test, 32);
    const auto high_report = measure_sparsity(high_net, f.test, 32);
    EXPECT_GT(high_report.overall(), low_report.overall() + 0.2);
}

TEST(Calibration, FloorClampRaisesSparsityAboveTarget) {
    Fixture f;
    MimeNetwork net(tiny_config());
    CalibrationOptions options;
    options.target_sparsity = 0.1;  // percentile mostly below zero
    options.floor = 0.0f;           // ... but clamped to >= 0
    const auto achieved = calibrate_thresholds(net, f.calibration, options);
    // With t >= 0, at least all negative activations are masked (~half).
    for (const double s : achieved) {
        EXPECT_GT(s, 0.25);
    }
}

TEST(Calibration, ValidatesOptions) {
    Fixture f;
    MimeNetwork net(tiny_config());
    CalibrationOptions bad;
    bad.target_sparsity = 1.0;
    EXPECT_THROW(calibrate_thresholds(net, f.calibration, bad),
                 mime::check_error);
    CalibrationOptions per_neuron;
    const data::Batch tiny = f.test.head(2);
    EXPECT_THROW(calibrate_thresholds(net, tiny, per_neuron),
                 mime::check_error);
}

}  // namespace
}  // namespace mime::core
