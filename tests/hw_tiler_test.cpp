// Tests for the OS-dataflow tiler.
#include <gtest/gtest.h>

#include "arch/vgg.h"
#include "common/check.h"
#include "hw/tiler.h"

namespace mime::hw {
namespace {

arch::LayerSpec conv_layer(std::int64_t cin, std::int64_t cout,
                           std::int64_t hw) {
    arch::LayerSpec spec;
    spec.name = "conv";
    spec.in_channels = cin;
    spec.out_channels = cout;
    spec.kernel = 3;
    spec.padding = 1;
    spec.in_height = hw;
    spec.in_width = hw;
    return spec;
}

TEST(Tiler, CandidatesCoverAllOutputs) {
    const auto layer = conv_layer(64, 128, 16);
    for (const Tiling& t : enumerate_tilings(layer, 1024)) {
        EXPECT_LE(t.pe_used(), 1024);
        EXPECT_GE(t.channel_blocks * t.channels_per_tile, 128);
        EXPECT_GE(t.spatial_blocks * t.pixels_per_tile, 16 * 16);
    }
}

TEST(Tiler, LargestCandidateUsesAllChannels) {
    const auto layer = conv_layer(64, 128, 16);
    const Tiling t = default_tiling(layer, 1024);
    EXPECT_EQ(t.channels_per_tile, 128);
    EXPECT_EQ(t.pixels_per_tile, 8);  // 1024 / 128
    EXPECT_EQ(t.channel_blocks, 1);
    EXPECT_EQ(t.spatial_blocks, 32);
}

TEST(Tiler, SmallPeArrayShrinksTiles) {
    const auto layer = conv_layer(64, 512, 8);
    const Tiling big = default_tiling(layer, 1024);
    const Tiling small = default_tiling(layer, 256);
    EXPECT_GT(big.pe_used(), small.pe_used());
    EXPECT_GE(small.tile_count(), big.tile_count());
}

TEST(Tiler, FcLayerIsSingleSpatialPixel) {
    arch::LayerSpec fc;
    fc.name = "conv14";
    fc.kind = arch::LayerKind::fc;
    fc.in_channels = 512;
    fc.out_channels = 512;
    const Tiling t = default_tiling(fc, 1024);
    EXPECT_EQ(t.pixels_per_tile, 1);
    EXPECT_EQ(t.channels_per_tile, 512);
    EXPECT_DOUBLE_EQ(t.halo_factor(fc), 1.0);
}

TEST(Tiler, HaloFactorBounds) {
    const auto layer = conv_layer(3, 64, 32);
    for (const Tiling& t : enumerate_tilings(layer, 1024)) {
        const double h = t.halo_factor(layer);
        EXPECT_GE(h, 1.0);
        EXPECT_LE(h, 9.0);  // K^2 worst case for 3x3 stride 1
    }
}

TEST(Tiler, HaloShrinksWithLargerSpatialTiles) {
    const auto layer = conv_layer(3, 4, 32);  // few channels → big S_t
    Tiling small_tile;
    small_tile.channels_per_tile = 4;
    small_tile.pixels_per_tile = 4;
    Tiling large_tile;
    large_tile.channels_per_tile = 4;
    large_tile.pixels_per_tile = 256;
    EXPECT_GT(small_tile.halo_factor(layer), large_tile.halo_factor(layer));
}

TEST(Tiler, FullMapTileHasNoHalo) {
    const auto layer = conv_layer(3, 4, 8);
    Tiling t;
    t.channels_per_tile = 4;
    t.pixels_per_tile = 64;  // whole 8x8 map
    EXPECT_DOUBLE_EQ(t.halo_factor(layer), 1.0);
}

TEST(Tiler, RejectsBadInput) {
    const auto layer = conv_layer(3, 4, 8);
    EXPECT_THROW(enumerate_tilings(layer, 0), mime::check_error);
}

// The full VGG16 sweeps: every layer must tile onto both array sizes.
class TilerVggSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TilerVggSweep, AllVggLayersTile) {
    arch::VggConfig config;
    config.input_size = 64;
    for (const auto& layer : arch::vgg16_spec(config)) {
        const auto tilings = enumerate_tilings(layer, GetParam());
        EXPECT_FALSE(tilings.empty()) << layer.name;
        for (const Tiling& t : tilings) {
            EXPECT_LE(t.pe_used(), GetParam()) << layer.name;
            EXPECT_GE(t.tile_count() * t.pe_used(), layer.neuron_count())
                << layer.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, TilerVggSweep,
                         ::testing::Values(64, 256, 1024, 4096));

}  // namespace
}  // namespace mime::hw
