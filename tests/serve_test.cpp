// Tests for the serving runtime: task batching, the LRU threshold cache,
// the load generator, and the InferenceServer end to end (served outputs
// must bit-match direct per-task forward passes; concurrent submits must
// be safe).
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <memory>
#include <thread>

#include "common/check.h"
#include "core/adaptation_store.h"
#include "serve/batcher.h"
#include "serve/inference_server.h"
#include "serve/latency_stats.h"
#include "serve/load_gen.h"
#include "serve/request_queue.h"
#include "serve/threshold_cache.h"
#include "tensor/tensor_ops.h"

namespace mime::serve {
namespace {

core::MimeNetworkConfig tiny_config(std::uint64_t seed = 3) {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = seed;
    return config;
}

InferenceRequest make_request(std::int64_t id, const std::string& task,
                              Clock::time_point enqueue_time = Clock::now()) {
    InferenceRequest request;
    request.id = id;
    request.task = task;
    request.image = Tensor({3, 32, 32});
    request.enqueue_time = enqueue_time;
    return request;
}

std::vector<std::string> batch_tasks(
    const std::vector<InferenceRequest>& batch) {
    std::vector<std::string> tasks;
    tasks.reserve(batch.size());
    for (const InferenceRequest& request : batch) {
        tasks.push_back(request.task);
    }
    return tasks;
}

// ---------------------------------------------------------------------------
// TaskBatcher
// ---------------------------------------------------------------------------

TEST(TaskBatcher, GroupsByTaskAcrossInterleavedArrivals) {
    BatcherConfig config;
    config.policy = BatchingPolicy::task_grouped;
    config.max_batch_size = 4;
    config.max_wait = std::chrono::microseconds(0);  // always ready
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    batcher.add(make_request(0, "a", t0));
    batcher.add(make_request(1, "b", t0));
    batcher.add(make_request(2, "a", t0));
    batcher.add(make_request(3, "b", t0));
    batcher.add(make_request(4, "a", t0));

    auto first = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(batch_tasks(*first), (std::vector<std::string>{"a", "a", "a"}));

    auto second = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(batch_tasks(*second), (std::vector<std::string>{"b", "b"}));
    EXPECT_TRUE(batcher.empty());
}

TEST(TaskBatcher, RespectsMaxBatchSize) {
    BatcherConfig config;
    config.policy = BatchingPolicy::task_grouped;
    config.max_batch_size = 2;
    config.max_wait = std::chrono::microseconds(0);
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < 5; ++i) {
        batcher.add(make_request(i, "a", t0));
    }
    std::vector<std::size_t> sizes;
    while (auto batch = batcher.next_batch(Clock::now()).batch) {
        sizes.push_back(batch->size());
    }
    EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2, 1}));
}

TEST(TaskBatcher, FifoNeverReordersAcrossTaskChange) {
    BatcherConfig config;
    config.policy = BatchingPolicy::fifo;
    config.max_batch_size = 4;
    config.max_wait = std::chrono::microseconds(0);
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    batcher.add(make_request(0, "a", t0));
    batcher.add(make_request(1, "b", t0));
    batcher.add(make_request(2, "a", t0));

    auto first = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(batch_tasks(*first), (std::vector<std::string>{"a"}));
    auto second = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(batch_tasks(*second), (std::vector<std::string>{"b"}));
}

TEST(TaskBatcher, WaitsForFullBatchUntilMaxWait) {
    BatcherConfig config;
    config.policy = BatchingPolicy::task_grouped;
    config.max_batch_size = 4;
    config.max_wait = std::chrono::microseconds(1000000);  // 1 s
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    batcher.add(make_request(0, "a", t0));
    batcher.add(make_request(1, "a", t0));

    // Not full and not expired: nothing is ready.
    EXPECT_FALSE(batcher.next_batch(t0).batch.has_value());
    // Past the deadline the partial batch goes out.
    auto late = batcher.next_batch(t0 + std::chrono::seconds(2)).batch;
    ASSERT_TRUE(late.has_value());
    EXPECT_EQ(late->size(), 2u);
    // Flush forces pending requests out regardless of age.
    batcher.add(make_request(2, "a", t0));
    auto flushed = batcher.next_batch(t0, /*flush=*/true).batch;
    ASSERT_TRUE(flushed.has_value());
    EXPECT_EQ(flushed->size(), 1u);
}

TEST(TaskBatcher, InteractiveLaneHasBatchFormingPrecedence) {
    BatcherConfig config;
    config.policy = BatchingPolicy::task_grouped;
    config.max_batch_size = 4;
    config.max_wait = std::chrono::microseconds(0);  // always ready
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    // Batch-priority traffic arrives first, interactive later: the
    // interactive lane must still dispatch first under both policies.
    InferenceRequest background = make_request(0, "bg", t0);
    background.priority = Priority::batch;
    batcher.add(std::move(background));
    batcher.add(make_request(1, "fg", t0));  // interactive by default

    auto first = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(batch_tasks(*first), (std::vector<std::string>{"fg"}));
    auto second = batcher.next_batch(Clock::now()).batch;
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(batch_tasks(*second), (std::vector<std::string>{"bg"}));
    EXPECT_TRUE(batcher.empty());
}

TEST(TaskBatcher, ReapsExpiredDeadlinesBeforeFormingBatches) {
    BatcherConfig config;
    config.max_batch_size = 4;
    config.max_wait = std::chrono::microseconds(0);
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    InferenceRequest doomed = make_request(0, "a", t0);
    doomed.deadline = t0 + std::chrono::microseconds(10);
    batcher.add(std::move(doomed));
    batcher.add(make_request(1, "a", t0));

    // next_deadline must surface the request deadline so the dispatch
    // loop wakes to expire it promptly.
    ASSERT_TRUE(batcher.next_deadline().has_value());
    EXPECT_LE(*batcher.next_deadline(), t0 + std::chrono::microseconds(10));

    BatchResult decision =
        batcher.next_batch(t0 + std::chrono::milliseconds(1));
    ASSERT_EQ(decision.reaped.size(), 1u);
    EXPECT_EQ(decision.reaped[0].status, ServeStatus::deadline_exceeded);
    EXPECT_EQ(decision.reaped[0].request.id, 0);
    ASSERT_TRUE(decision.batch.has_value());
    EXPECT_EQ(decision.batch->size(), 1u);
    EXPECT_EQ(decision.batch->front().id, 1);
}

TEST(TaskBatcher, ReapsCancelledRequestsWithoutDispatching) {
    BatcherConfig config;
    config.max_batch_size = 4;
    config.max_wait = std::chrono::microseconds(0);
    TaskBatcher batcher(config);

    const auto t0 = Clock::now();
    InferenceRequest cancelled = make_request(0, "a", t0);
    cancelled.control = std::make_shared<RequestControl>();
    auto control = cancelled.control;
    batcher.add(std::move(cancelled));
    InferenceRequest survivor = make_request(1, "a", t0);
    survivor.control = std::make_shared<RequestControl>();
    auto survivor_control = survivor.control;
    batcher.add(std::move(survivor));
    EXPECT_TRUE(control->cancel());

    BatchResult decision = batcher.next_batch(Clock::now());
    ASSERT_EQ(decision.reaped.size(), 1u);
    EXPECT_EQ(decision.reaped[0].status, ServeStatus::cancelled);
    ASSERT_TRUE(decision.batch.has_value());
    EXPECT_EQ(decision.batch->size(), 1u);
    EXPECT_EQ(decision.batch->front().id, 1);
    // The dispatched request was claimed: a late cancel loses.
    EXPECT_FALSE(survivor_control->cancel());
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(RequestQueue, DrainReturnsEverythingInOrder) {
    RequestQueue queue(16);
    EXPECT_TRUE(queue.push(make_request(0, "a")));
    EXPECT_TRUE(queue.push(make_request(1, "b")));
    auto drained = queue.drain_now();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].id, 0);
    EXPECT_EQ(drained[1].id, 1);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueue, RejectsPushAfterClose) {
    RequestQueue queue(4);
    EXPECT_TRUE(queue.push(make_request(0, "a")));
    queue.close();
    EXPECT_FALSE(queue.push(make_request(1, "a")));
    // Queued requests stay drainable after close.
    EXPECT_EQ(queue.drain_now().size(), 1u);
}

TEST(RequestQueue, DrainUntilWakesOnArrival) {
    RequestQueue queue(4);
    std::thread producer([&queue] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        queue.push(make_request(7, "a"));
    });
    const auto drained =
        queue.drain_until(Clock::now() + std::chrono::seconds(10));
    producer.join();
    ASSERT_EQ(drained.size(), 1u);
    EXPECT_EQ(drained[0].id, 7);
}

// ---------------------------------------------------------------------------
// ThresholdCache
// ---------------------------------------------------------------------------

core::TaskAdaptation synthetic_adaptation(const std::string& name) {
    core::TaskAdaptation adaptation;
    adaptation.name = name;
    adaptation.thresholds.task_name = name;
    adaptation.thresholds.thresholds = {Tensor({4}, 0.5f)};
    adaptation.head_weight = Tensor({10, 4});
    adaptation.head_bias = Tensor({10});
    adaptation.num_classes = 10;
    return adaptation;
}

TEST(ThresholdCache, CountsHitsAndMisses) {
    std::int64_t loader_calls = 0;
    ThresholdCache cache(2, [&loader_calls](const std::string& name) {
        ++loader_calls;
        return synthetic_adaptation(name);
    });

    EXPECT_EQ(cache.get("a").name, "a");
    EXPECT_EQ(cache.get("a").name, "a");
    EXPECT_EQ(cache.get("b").name, "b");
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 2);
    EXPECT_EQ(loader_calls, 2);
    EXPECT_EQ(cache.evictions(), 0);
}

TEST(ThresholdCache, EvictsLeastRecentlyUsed) {
    ThresholdCache cache(2, [](const std::string& name) {
        return synthetic_adaptation(name);
    });

    cache.get("a");
    cache.get("b");
    cache.get("a");  // "b" is now LRU
    cache.get("c");  // evicts "b"

    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_TRUE(cache.contains("a"));
    EXPECT_FALSE(cache.contains("b"));
    EXPECT_TRUE(cache.contains("c"));
    EXPECT_EQ(cache.resident_tasks(),
              (std::vector<std::string>{"c", "a"}));

    // Touching the evicted task re-hydrates it (a miss).
    cache.get("b");
    EXPECT_EQ(cache.misses(), 4);
    EXPECT_EQ(cache.evictions(), 2);
}

TEST(ThresholdCache, ThrowingLoaderLeavesCacheUntouched) {
    ThresholdCache cache(1, [](const std::string& name) {
        if (name == "bad") {
            throw check_error("bad", "here", 1, "no such task");
        }
        return synthetic_adaptation(name);
    });
    cache.get("a");
    EXPECT_THROW(cache.get("bad"), check_error);
    EXPECT_TRUE(cache.contains("a"));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ThresholdCache, ReportsResidentBytes) {
    ThresholdCache cache(2, [](const std::string& name) {
        return synthetic_adaptation(name);
    });
    cache.get("a");
    // 4 thresholds + 10x4 head weights + 10 biases, 4 bytes each.
    EXPECT_EQ(cache.resident_bytes(), (4 + 40 + 10) * 4);
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

TEST(LoadGen, GeneratesRequestedCountWithMonotoneOffsets) {
    for (const ArrivalPattern pattern :
         {ArrivalPattern::uniform, ArrivalPattern::skewed,
          ArrivalPattern::bursty}) {
        LoadSpec spec;
        spec.pattern = pattern;
        spec.task_count = 4;
        spec.request_count = 300;
        spec.seed = 9;
        const auto events = generate_arrivals(spec);
        ASSERT_EQ(events.size(), 300u) << to_string(pattern);
        for (std::size_t i = 1; i < events.size(); ++i) {
            EXPECT_GE(events[i].offset_us, events[i - 1].offset_us);
        }
        const auto histogram = task_histogram(events, spec.task_count);
        std::int64_t total = 0;
        for (const std::int64_t count : histogram) {
            total += count;
        }
        EXPECT_EQ(total, 300);
    }
}

TEST(LoadGen, SkewedTrafficFavorsTaskZero) {
    LoadSpec spec;
    spec.pattern = ArrivalPattern::skewed;
    spec.task_count = 4;
    spec.request_count = 1000;
    spec.zipf_s = 1.5;
    spec.seed = 5;
    const auto histogram =
        task_histogram(generate_arrivals(spec), spec.task_count);
    EXPECT_GT(histogram[0], histogram[3] * 2);
}

TEST(LoadGen, BurstyTrafficFormsSameTaskRuns) {
    LoadSpec spec;
    spec.pattern = ArrivalPattern::bursty;
    spec.task_count = 4;
    spec.request_count = 400;
    spec.mean_burst_length = 10.0;
    spec.seed = 11;
    const auto events = generate_arrivals(spec);
    std::int64_t switches = 0;
    for (std::size_t i = 1; i < events.size(); ++i) {
        if (events[i].task != events[i - 1].task) {
            ++switches;
        }
    }
    // Task-coherent bursts mean far fewer switches than uniform traffic
    // (which would switch ~3/4 of the time).
    EXPECT_LT(switches, 150);
}

TEST(LoadGen, SameSeedReproducesIdenticalStreams) {
    // Bench reproducibility rests on this: a LoadSpec is a complete,
    // deterministic description of its arrival stream.
    for (const ArrivalPattern pattern :
         {ArrivalPattern::uniform, ArrivalPattern::skewed,
          ArrivalPattern::bursty}) {
        LoadSpec spec;
        spec.pattern = pattern;
        spec.task_count = 5;
        spec.request_count = 500;
        spec.seed = 77;
        const auto first = generate_arrivals(spec);
        const auto second = generate_arrivals(spec);
        ASSERT_EQ(first.size(), second.size()) << to_string(pattern);
        for (std::size_t i = 0; i < first.size(); ++i) {
            // Bitwise-equal offsets, not approximately equal: the same
            // seed must replay the exact same stream.
            ASSERT_EQ(first[i].offset_us, second[i].offset_us)
                << to_string(pattern) << " event " << i;
            ASSERT_EQ(first[i].task, second[i].task)
                << to_string(pattern) << " event " << i;
        }

        LoadSpec reseeded = spec;
        reseeded.seed = 78;
        const auto different = generate_arrivals(reseeded);
        bool any_difference = false;
        for (std::size_t i = 0; i < first.size(); ++i) {
            if (first[i].offset_us != different[i].offset_us ||
                first[i].task != different[i].task) {
                any_difference = true;
                break;
            }
        }
        EXPECT_TRUE(any_difference)
            << to_string(pattern) << ": changing the seed changed nothing";
    }
}

// ---------------------------------------------------------------------------
// Latency recorder
// ---------------------------------------------------------------------------

TEST(LatencyRecorder, PercentilesNearestRank) {
    LatencyRecorder recorder;
    for (int i = 100; i >= 1; --i) {
        recorder.add(static_cast<double>(i));
    }
    EXPECT_EQ(recorder.count(), 100);
    EXPECT_DOUBLE_EQ(recorder.percentile(50.0), 50.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(95.0), 95.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(recorder.max(), 100.0);
    EXPECT_DOUBLE_EQ(recorder.mean(), 50.5);
}

TEST(LatencyRecorder, MergeComputesPooledPercentilesNotAverages) {
    // Replica A is fast (1..100 us), replica B slow (1001..1100 us).
    LatencyRecorder fast;
    LatencyRecorder slow;
    for (int i = 1; i <= 100; ++i) {
        fast.add(static_cast<double>(i));
        slow.add(static_cast<double>(1000 + i));
    }

    LatencyRecorder pooled = fast;
    pooled.merge(slow);
    EXPECT_EQ(pooled.count(), 200);
    EXPECT_DOUBLE_EQ(pooled.max(), 1100.0);
    EXPECT_DOUBLE_EQ(pooled.mean(), (50.5 + 1050.5) / 2.0);
    // Exact pooled p50 over the 200 merged samples is 100 us. Averaging
    // the per-replica p50s (50 and 1050) would report 550 — the error
    // merge() exists to prevent.
    EXPECT_DOUBLE_EQ(pooled.percentile(50.0), 100.0);
    EXPECT_DOUBLE_EQ(pooled.percentile(100.0), 1100.0);

    // Merging an empty recorder is a no-op.
    LatencyRecorder empty;
    pooled.merge(empty);
    EXPECT_EQ(pooled.count(), 200);
    LatencyRecorder target;
    target.merge(pooled);
    EXPECT_EQ(target.count(), 200);
    EXPECT_DOUBLE_EQ(target.percentile(50.0), 100.0);
}

TEST(LatencyRecorder, EmptyAndSingletonEdgeCases) {
    // Empty summary: every field zero, no division by zero.
    LatencyRecorder empty;
    EXPECT_EQ(empty.count(), 0);
    EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
    const LatencyRecorder::Summary none = empty.summary();
    EXPECT_DOUBLE_EQ(none.p50, 0.0);
    EXPECT_DOUBLE_EQ(none.p999, 0.0);

    // Merging empty into empty stays empty.
    LatencyRecorder still_empty;
    still_empty.merge(empty);
    EXPECT_EQ(still_empty.count(), 0);

    // A singleton answers every percentile with its one sample
    // (nearest-rank clamps the rank to >= 1).
    LatencyRecorder one;
    one.add(42.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.1), 42.0);
    EXPECT_DOUBLE_EQ(one.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(one.percentile(99.9), 42.0);
    const LatencyRecorder::Summary single = one.summary();
    EXPECT_DOUBLE_EQ(single.p50, 42.0);
    EXPECT_DOUBLE_EQ(single.p99, 42.0);
    EXPECT_DOUBLE_EQ(single.p999, 42.0);

    // Merge of empty into singleton, and singleton into empty.
    one.merge(empty);
    EXPECT_EQ(one.count(), 1);
    LatencyRecorder adopted;
    adopted.merge(one);
    EXPECT_EQ(adopted.count(), 1);
    EXPECT_DOUBLE_EQ(adopted.percentile(99.9), 42.0);
}

TEST(LatencyRecorder, NearestRankAtTinyCounts) {
    // count == 2: rank = max(ceil(p/100 * 2), 1). p50 -> rank 1,
    // p51..p100 -> rank 2.
    LatencyRecorder two;
    two.add(10.0);
    two.add(20.0);
    EXPECT_DOUBLE_EQ(two.percentile(50.0), 10.0);
    EXPECT_DOUBLE_EQ(two.percentile(51.0), 20.0);
    EXPECT_DOUBLE_EQ(two.percentile(99.9), 20.0);

    // count == 3: p33.3 -> rank 1, p34 -> rank 2, p67 -> rank 3.
    LatencyRecorder three;
    three.add(30.0);
    three.add(10.0);  // insertion order must not matter
    three.add(20.0);
    EXPECT_DOUBLE_EQ(three.percentile(33.3), 10.0);
    EXPECT_DOUBLE_EQ(three.percentile(34.0), 20.0);
    EXPECT_DOUBLE_EQ(three.percentile(67.0), 30.0);
    EXPECT_DOUBLE_EQ(three.percentile(100.0), 30.0);
}

TEST(LatencyRecorder, P999RequiresTailResolution) {
    // 1000 distinct samples 1..1000: nearest-rank p99.9 is exactly the
    // 999th order statistic; p99 the 990th. The single sorted pass in
    // summary() must agree with percentile().
    LatencyRecorder recorder;
    for (int i = 1000; i >= 1; --i) {
        recorder.add(static_cast<double>(i));
    }
    const LatencyRecorder::Summary summary = recorder.summary();
    EXPECT_DOUBLE_EQ(summary.p99, 990.0);
    EXPECT_DOUBLE_EQ(summary.p999, 999.0);
    EXPECT_DOUBLE_EQ(summary.p999, recorder.percentile(99.9));
}

TEST(LatencyRecorder, MergeIsSeedStableAcrossRuns) {
    // Past the reservoir bound, merge() subsamples — but with a fixed
    // seed, so two identical merge sequences must produce identical
    // percentile estimates (stats() snapshots are reproducible).
    const auto build = [] {
        LatencyRecorder a;
        LatencyRecorder b;
        for (int i = 0; i < 90000; ++i) {
            a.add(static_cast<double>(i % 997));
            b.add(static_cast<double>(2000 + i % 1009));
        }
        a.merge(b);
        return a;
    };
    const LatencyRecorder first = build();
    const LatencyRecorder second = build();
    EXPECT_EQ(first.count(), second.count());
    for (const double p : {50.0, 95.0, 99.0, 99.9}) {
        EXPECT_DOUBLE_EQ(first.percentile(p), second.percentile(p))
            << "p" << p;
    }
}

TEST(LatencyRecorder, MergeBeyondReservoirKeepsProportionalSample) {
    // Push both recorders past the reservoir bound; the merged stream
    // must keep exact count/mean/max and percentiles that reflect the
    // mixture (2/3 of mass at ~10us, 1/3 at ~1000us).
    LatencyRecorder a;
    LatencyRecorder b;
    const int n = 90000;
    for (int i = 0; i < n; ++i) {
        a.add(10.0);
        if (i < n / 2) {
            b.add(1000.0);
        }
    }
    a.merge(b);
    EXPECT_EQ(a.count(), n + n / 2);
    EXPECT_DOUBLE_EQ(a.max(), 1000.0);
    EXPECT_NEAR(a.mean(), (10.0 * n + 1000.0 * (n / 2)) / (1.5 * n), 1e-9);
    // p50 falls in the fast mass, p95 in the slow mass.
    EXPECT_DOUBLE_EQ(a.percentile(50.0), 10.0);
    EXPECT_DOUBLE_EQ(a.percentile(95.0), 1000.0);
}

// ---------------------------------------------------------------------------
// InferenceServer end to end
// ---------------------------------------------------------------------------

struct ServeFixture {
    core::MimeNetwork network{tiny_config()};
    std::vector<core::TaskAdaptation> adaptations;

    ServeFixture() {
        network.set_training(false);
        network.set_mode(core::ActivationMode::threshold);
        // Three tasks with visibly different threshold sets.
        const std::vector<std::pair<std::string, float>> tasks = {
            {"alpha", 0.02f}, {"beta", 0.3f}, {"gamma", 1.0f}};
        for (const auto& [name, value] : tasks) {
            network.reset_thresholds(value);
            adaptations.push_back(
                core::capture_adaptation(network, name, 10));
        }
    }

    ThresholdCache::Loader loader() {
        return [this](const std::string& name) {
            for (const core::TaskAdaptation& adaptation : adaptations) {
                if (adaptation.name == name) {
                    return adaptation;
                }
            }
            throw check_error("name", __FILE__, __LINE__,
                              "unknown task " + name);
        };
    }

    /// Reference forward: install the task directly, run a batch of one.
    Tensor direct_logits(const std::string& task, const Tensor& image) {
        for (const core::TaskAdaptation& adaptation : adaptations) {
            if (adaptation.name != task) {
                continue;
            }
            network.load_thresholds(adaptation.thresholds);
            auto backbone = network.backbone_parameters();
            backbone[backbone.size() - 2]->value.copy_from(
                adaptation.head_weight);
            backbone[backbone.size() - 1]->value.copy_from(
                adaptation.head_bias);
            return network.forward(stack({image}));
        }
        throw check_error("task", __FILE__, __LINE__, "unknown task");
    }
};

TEST(InferenceServer, ServedOutputsBitMatchDirectForward) {
    ServeFixture fixture;
    Rng rng(17);
    const std::vector<std::string> tasks = {"alpha", "beta", "gamma"};

    std::vector<std::string> request_tasks;
    std::vector<Tensor> request_images;
    std::vector<std::future<InferenceResult>> futures;
    {
        ServerConfig config;
        config.batcher.policy = BatchingPolicy::task_grouped;
        config.batcher.max_batch_size = 4;
        config.batcher.max_wait = std::chrono::microseconds(2000);
        config.cache_capacity = 3;
        config.worker_threads = 1;
        InferenceServer server(fixture.network, fixture.loader(), config);

        for (std::int64_t i = 0; i < 18; ++i) {
            const std::string task =
                tasks[static_cast<std::size_t>(i) % tasks.size()];
            Tensor image = Tensor::randn({3, 32, 32}, rng);
            request_tasks.push_back(task);
            request_images.push_back(image);
            futures.push_back(server.submit_async(task, std::move(image)));
        }
        server.drain();

        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.requests_completed, 18);
        EXPECT_GT(stats.batches_run, 0);
        EXPECT_GT(stats.threshold_swaps, 0);
        EXPECT_EQ(stats.cache_misses, 3);  // one hydrate per task
        server.stop();
    }

    for (std::size_t i = 0; i < futures.size(); ++i) {
        const InferenceResult result = futures[i].get();
        EXPECT_EQ(result.task, request_tasks[i]);
        const Tensor reference =
            fixture.direct_logits(request_tasks[i], request_images[i]);
        ASSERT_EQ(result.logits.numel(), 10);
        for (std::int64_t c = 0; c < 10; ++c) {
            // Bit-match: batched serving must not perturb numerics.
            ASSERT_EQ(result.logits[c], reference[c])
                << "request " << i << " class " << c;
        }
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < 10; ++c) {
            if (reference[c] > reference[best]) {
                best = c;
            }
        }
        EXPECT_EQ(result.predicted_class, best);
    }
}

TEST(InferenceServer, QuantizedExecutionServesAndReportsCounters) {
    ServeFixture fixture;
    ServerConfig config;
    config.batcher.max_batch_size = 4;
    config.batcher.max_wait = std::chrono::microseconds(2000);
    config.worker_threads = 1;
    config.quantized_execution = true;
    InferenceServer server(fixture.network, fixture.loader(), config);

    Rng rng(19);
    const Tensor image = Tensor::randn({3, 32, 32}, rng);
    // The same (task, image) twice: the int8 path is deterministic, so
    // serving must reproduce logits bit-for-bit across batches.
    const InferenceResult first =
        server.submit_async("alpha", image.clone()).get();
    server.drain();
    const InferenceResult second =
        server.submit_async("alpha", image.clone()).get();
    const InferenceResult other =
        server.submit_async("beta", image.clone()).get();
    server.drain();

    ASSERT_EQ(first.logits.numel(), second.logits.numel());
    for (std::int64_t c = 0; c < first.logits.numel(); ++c) {
        ASSERT_EQ(first.logits[c], second.logits[c]) << "class " << c;
    }
    (void)other;

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests_served, 3);
    EXPECT_GT(stats.quantized_path_hits, 0);
    EXPECT_GT(stats.quantized_weight_max_rel_error, 0.0);
    EXPECT_LT(stats.quantized_weight_max_rel_error, 0.05);
    // The counters ride the metrics registry like every other serving
    // stat (JSON / Prometheus export included).
    bool found = false;
    for (const auto& metric : server.metrics().snapshot()) {
        if (metric.name == "serve.quantized_path_hits") {
            EXPECT_EQ(metric.type, obs::MetricType::gauge);
            EXPECT_GT(metric.value, 0.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    server.stop();

    // A float server reports zero quantized activity.
    config.quantized_execution = false;
    InferenceServer fp32(fixture.network, fixture.loader(), config);
    fp32.submit_async("alpha", image.clone()).get();
    fp32.drain();
    EXPECT_EQ(fp32.stats().quantized_path_hits, 0);
    EXPECT_EQ(fp32.stats().quantized_weight_max_rel_error, 0.0);
}

TEST(InferenceServer, ConcurrentSubmitsAreSafe) {
    ServeFixture fixture;
    ServerConfig config;
    config.batcher.max_batch_size = 8;
    config.batcher.max_wait = std::chrono::microseconds(500);
    config.cache_capacity = 2;  // force evictions among 3 tasks
    config.worker_threads = 1;
    config.queue_capacity = 16;  // exercise backpressure
    InferenceServer server(fixture.network, fixture.loader(), config);

    const std::vector<std::string> tasks = {"alpha", "beta", "gamma"};
    constexpr int kThreads = 4;
    constexpr int kPerThread = 12;
    std::vector<std::thread> clients;
    std::vector<std::vector<InferenceResult>> results(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            Rng rng(static_cast<std::uint64_t>(100 + t));
            for (int i = 0; i < kPerThread; ++i) {
                const std::string& task =
                    tasks[static_cast<std::size_t>((t + i) % 3)];
                results[static_cast<std::size_t>(t)].push_back(
                    server.submit(task, Tensor::randn({3, 32, 32}, rng)));
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    server.stop();

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests_completed, kThreads * kPerThread);
    EXPECT_GE(stats.cache_misses, 3);
    for (const auto& per_client : results) {
        ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kPerThread));
        for (const InferenceResult& result : per_client) {
            EXPECT_EQ(result.logits.numel(), 10);
            EXPECT_GE(result.predicted_class, 0);
            EXPECT_LT(result.predicted_class, 10);
            EXPECT_GT(result.latency_us, 0.0);
        }
    }
}

TEST(InferenceServer, RejectsWrongImageShapeAtSubmit) {
    ServeFixture fixture;
    InferenceServer server(fixture.network, fixture.loader());
    // A mis-shaped request must fail at the door, not poison a batch.
    EXPECT_THROW(server.submit("alpha", Tensor({1, 28, 28})), check_error);
    EXPECT_THROW(server.submit("alpha", Tensor({3, 32})), check_error);
    // Well-formed traffic is unaffected.
    const InferenceResult result =
        server.submit("alpha", Tensor({3, 32, 32}, 0.2f));
    EXPECT_EQ(result.task, "alpha");
    server.stop();
}

TEST(LoadGen, RejectsDegenerateBurstGapFraction) {
    LoadSpec spec;
    spec.pattern = ArrivalPattern::bursty;
    spec.burst_gap_fraction = 1.5;  // would make the idle gap negative
    EXPECT_THROW(generate_arrivals(spec), check_error);
}

TEST(InferenceServer, SubmitAfterStopThrows) {
    ServeFixture fixture;
    InferenceServer server(fixture.network, fixture.loader());
    server.stop();
    EXPECT_THROW(server.submit("alpha", Tensor({3, 32, 32})), check_error);
}

TEST(InferenceServer, HydratesFromAdaptationStoreOnDisk) {
    ServeFixture fixture;
    const std::string dir = ::testing::TempDir() + "/serve_store_test";
    std::filesystem::remove_all(dir);
    core::AdaptationStore store(dir);
    for (const core::TaskAdaptation& adaptation : fixture.adaptations) {
        store.save_task(adaptation);
    }

    InferenceServer server(fixture.network, store.task_loader());
    const InferenceResult result =
        server.submit("beta", Tensor({3, 32, 32}, 0.1f));
    EXPECT_EQ(result.task, "beta");
    EXPECT_EQ(server.stats().cache_misses, 1);
    server.stop();
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Planned executor in the server (Workspace stats, steady-state allocs)
// ---------------------------------------------------------------------------

TEST(InferenceServer, ReportsWorkspaceBytesWithPlannedExecutor) {
    ServeFixture fixture;
    ServerConfig config;
    config.batcher.max_batch_size = 4;
    config.batcher.max_wait = std::chrono::microseconds(500);
    config.worker_threads = 1;
    ASSERT_TRUE(config.planned_executor);  // the default
    InferenceServer server(fixture.network, fixture.loader(), config);

    Rng rng(27);
    for (int i = 0; i < 8; ++i) {
        server.submit("alpha", Tensor::randn({3, 32, 32}, rng));
    }
    server.drain();
    const ServerStats stats = server.stats();
    // Steady-state workspace bytes are reported alongside sparsity.
    EXPECT_GT(stats.workspace_peak_bytes, 0);
    EXPECT_GT(stats.plan_buffer_bytes, 0);
    EXPECT_GT(stats.per_task.at("alpha").mean_sparsity, 0.0);
    server.stop();
}

TEST(InferenceServer, SteadyStateBatchesAllocateNoTensorStorage) {
    ServeFixture fixture;
    ServerConfig config;
    config.batcher.max_batch_size = 1;  // fixed batch size -> one plan
    config.batcher.max_wait = std::chrono::microseconds(0);
    config.worker_threads = 1;
    InferenceServer server(fixture.network, fixture.loader(), config);

    const Tensor image({3, 32, 32}, 0.1f);
    // Warm-up: hydrate the task, build the plan, reserve the workspace.
    server.submit("alpha", image);
    server.submit("alpha", image);

    const std::int64_t allocations = Tensor::storage_allocation_count();
    server.submit("alpha", image);
    const std::int64_t per_request =
        Tensor::storage_allocation_count() - allocations;
    // The forward itself is allocation-free; what remains is request
    // plumbing (the submitted image, the result logits row) — a handful
    // of tiny tensors, not the per-layer activation churn of the legacy
    // path. Bound it tightly so a regression reintroducing per-layer
    // allocation trips this immediately.
    EXPECT_LE(per_request, 8)
        << "steady-state request allocated " << per_request
        << " tensor storage blocks";
    server.stop();
}

TEST(InferenceServer, LegacyExecutorStillServesAndReportsNoWorkspace) {
    ServeFixture fixture;
    ServerConfig config;
    config.batcher.max_batch_size = 4;
    config.batcher.max_wait = std::chrono::microseconds(500);
    config.worker_threads = 1;
    config.planned_executor = false;
    InferenceServer server(fixture.network, fixture.loader(), config);

    Rng rng(28);
    const Tensor image = Tensor::randn({3, 32, 32}, rng);
    const InferenceResult result = server.submit("beta", image.clone());
    EXPECT_EQ(result.task, "beta");
    server.drain();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.workspace_peak_bytes, 0);
    EXPECT_EQ(stats.plan_buffer_bytes, 0);

    // Legacy and planned paths serve bit-identical logits.
    const Tensor reference = fixture.direct_logits("beta", image);
    for (std::int64_t c = 0; c < result.logits.numel(); ++c) {
        ASSERT_EQ(result.logits[c], reference[c]);
    }
    server.stop();
}

// ---------------------------------------------------------------------------
// Threshold install micro-properties (the serving hot path)
// ---------------------------------------------------------------------------

TEST(ThresholdInstall, IsAllocationFree) {
    core::MimeNetwork network(tiny_config());
    network.reset_thresholds(0.25f);
    const core::ThresholdSet set = network.snapshot_thresholds("t");

    // Installing a set must reuse each site's existing storage: the data
    // pointers are stable across load_thresholds.
    std::vector<const float*> before;
    for (std::int64_t i = 0; i < network.site_count(); ++i) {
        before.push_back(network.site(i).mask().thresholds().value.data());
    }
    network.reset_thresholds(0.75f);
    network.load_thresholds(set);
    for (std::int64_t i = 0; i < network.site_count(); ++i) {
        EXPECT_EQ(network.site(i).mask().thresholds().value.data(),
                  before[static_cast<std::size_t>(i)])
            << "site " << i << " reallocated its threshold tensor";
        EXPECT_EQ(network.site(i).mask().thresholds().value[0], 0.25f);
    }
}

TEST(TensorCopyFrom, RejectsShapeMismatch) {
    Tensor a({2, 3});
    const Tensor b({3, 2});
    EXPECT_THROW(a.copy_from(b), check_error);
}

}  // namespace
}  // namespace mime::serve
