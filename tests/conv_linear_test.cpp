// Tests for Conv2d and Linear: reference forward, gradient checks,
// threading equivalence, and the planned-executor forward_into variants
// (workspace-backed, eval-mode, allocation-free).
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "nn/conv2d.h"
#include "nn/gradcheck.h"
#include "nn/linear.h"
#include "tensor/workspace.h"

namespace mime::nn {
namespace {

/// Direct O(N^7) convolution used as ground truth.
Tensor conv_reference(const Tensor& input, const Tensor& weight,
                      const Tensor* bias, std::int64_t stride,
                      std::int64_t padding) {
    const std::int64_t batch = input.shape().dim(0);
    const std::int64_t cin = input.shape().dim(1);
    const std::int64_t h = input.shape().dim(2);
    const std::int64_t w = input.shape().dim(3);
    const std::int64_t cout = weight.shape().dim(0);
    const std::int64_t k = weight.shape().dim(2);
    const std::int64_t ho = (h + 2 * padding - k) / stride + 1;
    const std::int64_t wo = (w + 2 * padding - k) / stride + 1;

    Tensor out({batch, cout, ho, wo});
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t co = 0; co < cout; ++co) {
            for (std::int64_t oy = 0; oy < ho; ++oy) {
                for (std::int64_t ox = 0; ox < wo; ++ox) {
                    double acc = bias != nullptr ? (*bias)[co] : 0.0;
                    for (std::int64_t ci = 0; ci < cin; ++ci) {
                        for (std::int64_t ky = 0; ky < k; ++ky) {
                            for (std::int64_t kx = 0; kx < k; ++kx) {
                                const std::int64_t iy =
                                    oy * stride + ky - padding;
                                const std::int64_t ix =
                                    ox * stride + kx - padding;
                                if (iy < 0 || iy >= h || ix < 0 || ix >= w) {
                                    continue;
                                }
                                acc += static_cast<double>(input.at(
                                           {n, ci, iy, ix})) *
                                       weight.at({co, ci, ky, kx});
                            }
                        }
                    }
                    out.at({n, co, oy, ox}) = static_cast<float>(acc);
                }
            }
        }
    }
    return out;
}

TEST(Conv2d, MatchesReferenceForward) {
    Rng rng(4);
    Conv2d conv(3, 5, 3, 1, 1, rng, /*bias=*/true);
    conv.bias().value = Tensor::randn({5}, rng);
    const Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
    const Tensor y = conv.forward(x);
    const Tensor ref =
        conv_reference(x, conv.weight().value, &conv.bias().value, 1, 1);
    ASSERT_EQ(y.shape(), ref.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_NEAR(y[i], ref[i], 2e-4f);
    }
}

TEST(Conv2d, MatchesReferenceStrided) {
    Rng rng(8);
    Conv2d conv(2, 4, 3, 2, 0, rng, /*bias=*/false);
    const Tensor x = Tensor::randn({3, 2, 9, 9}, rng);
    const Tensor y = conv.forward(x);
    const Tensor ref = conv_reference(x, conv.weight().value, nullptr, 2, 0);
    ASSERT_EQ(y.shape(), ref.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_NEAR(y[i], ref[i], 2e-4f);
    }
}

TEST(Conv2d, ThreadedForwardMatchesSerial) {
    Rng rng(15);
    Conv2d conv(4, 8, 3, 1, 1, rng);
    const Tensor x = Tensor::randn({6, 4, 8, 8}, rng);
    const Tensor serial = conv.forward(x);
    ThreadPool pool(4);
    conv.set_pool(&pool);
    const Tensor threaded = conv.forward(x);
    for (std::int64_t i = 0; i < serial.numel(); ++i) {
        EXPECT_NEAR(serial[i], threaded[i], 1e-5f);
    }
}

TEST(Conv2d, InputGradCheck) {
    Rng rng(23);
    Conv2d conv(2, 3, 3, 1, 1, rng);
    const Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
    const auto result = check_input_gradient(conv, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Conv2d, ParameterGradCheck) {
    Rng rng(31);
    Conv2d conv(2, 3, 3, 1, 1, rng);
    const Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
    const auto result = check_parameter_gradients(conv, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Conv2d, GradientAccumulatesAcrossBackwards) {
    Rng rng(2);
    Conv2d conv(1, 1, 1, 1, 0, rng, /*bias=*/false);
    const Tensor x = Tensor::ones({1, 1, 2, 2});
    conv.weight().zero_grad();
    conv.forward(x);
    conv.backward(Tensor::ones({1, 1, 2, 2}));
    const float g1 = conv.weight().grad[0];
    conv.forward(x);
    conv.backward(Tensor::ones({1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(conv.weight().grad[0], 2.0f * g1);
}

TEST(Conv2d, RejectsWrongChannelCount) {
    Rng rng(1);
    Conv2d conv(3, 4, 3, 1, 1, rng);
    const Tensor x({1, 2, 8, 8});
    EXPECT_THROW(conv.forward(x), mime::check_error);
}

TEST(Conv2d, ParametersExposed) {
    Rng rng(1);
    Conv2d with_bias(2, 3, 3, 1, 1, rng, true);
    EXPECT_EQ(with_bias.parameters().size(), 2u);
    Conv2d without(2, 3, 3, 1, 1, rng, false);
    EXPECT_EQ(without.parameters().size(), 1u);
    EXPECT_FALSE(without.has_bias());
}

TEST(Conv2d, ForwardIntoBitMatchesForward) {
    Rng rng(12);
    Conv2d conv(3, 5, 3, 1, 1, rng);
    const Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
    const Tensor expected = conv.forward(x);

    conv.set_eval_mode(true);
    Workspace ws;
    ws.reserve(static_cast<std::size_t>(conv.workspace_floats(8, 8)) *
               sizeof(float));
    Tensor out(expected.shape());
    conv.forward_into(x, ws, out);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(out[i], expected[i]);
    }
    // Scratch is fully rewound after the call.
    EXPECT_EQ(ws.used_bytes(), 0u);
    EXPECT_GT(ws.peak_bytes(), 0u);
}

TEST(Conv2d, ForwardIntoRequiresEvalModeAndExactOutputShape) {
    Rng rng(13);
    Conv2d conv(2, 3, 3, 1, 0, rng);
    const Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
    Workspace ws(static_cast<std::size_t>(conv.workspace_floats(6, 6)) *
                 sizeof(float));
    Tensor out({1, 3, 4, 4});
    EXPECT_THROW(conv.forward_into(x, ws, out), check_error);  // not eval
    conv.set_eval_mode(true);
    Tensor bad({1, 3, 5, 5});
    EXPECT_THROW(conv.forward_into(x, ws, bad), check_error);
    EXPECT_NO_THROW(conv.forward_into(x, ws, out));
}

TEST(Conv2d, EvalModeForwardRetainsNoCachedInput) {
    Rng rng(14);
    Conv2d conv(2, 4, 3, 1, 1, rng);
    const Tensor x = Tensor::randn({2, 2, 8, 8}, rng);

    conv.set_training(false);  // inference mode alone still caches...
    conv.forward(x);
    EXPECT_GT(conv.cached_state_bytes(), 0);

    conv.set_eval_mode(true);  // ...eval mode releases and stops caching
    EXPECT_EQ(conv.cached_state_bytes(), 0);
    conv.forward(x);
    EXPECT_EQ(conv.cached_state_bytes(), 0);
    // With no cached input a backward pass is a checked error, not UB.
    EXPECT_THROW(conv.backward(Tensor({2, 4, 8, 8})), check_error);
}

TEST(Linear, ForwardIntoBitMatchesForwardAndKeepsNoCache) {
    Rng rng(15);
    Linear fc(6, 4, rng);
    const Tensor x = Tensor::randn({3, 6}, rng);
    const Tensor expected = fc.forward(x);

    fc.set_eval_mode(true);
    EXPECT_EQ(fc.cached_state_bytes(), 0);
    Tensor out({3, 4});
    fc.forward_into(x, out);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(out[i], expected[i]);
    }
    EXPECT_EQ(fc.cached_state_bytes(), 0);
    EXPECT_THROW(fc.backward(Tensor({3, 4})), check_error);

    Tensor bad({3, 5});
    EXPECT_THROW(fc.forward_into(x, bad), check_error);
}

TEST(Linear, ForwardMatchesManual) {
    Rng rng(3);
    Linear fc(3, 2, rng);
    fc.weight().value = Tensor({2, 3}, std::vector<float>{1, 0, -1, 2, 1, 0});
    fc.bias().value = Tensor({2}, std::vector<float>{0.5f, -0.5f});
    const Tensor x({1, 3}, std::vector<float>{1, 2, 3});
    const Tensor y = fc.forward(x);
    EXPECT_FLOAT_EQ(y[0], 1 * 1 + 0 * 2 + (-1) * 3 + 0.5f);
    EXPECT_FLOAT_EQ(y[1], 2 * 1 + 1 * 2 + 0 * 3 - 0.5f);
}

TEST(Linear, InputGradCheck) {
    Rng rng(41);
    Linear fc(6, 4, rng);
    const Tensor x = Tensor::randn({3, 6}, rng);
    const auto result = check_input_gradient(fc, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Linear, ParameterGradCheck) {
    Rng rng(43);
    Linear fc(6, 4, rng);
    const Tensor x = Tensor::randn({3, 6}, rng);
    const auto result = check_parameter_gradients(fc, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Linear, RejectsWrongFeatureCount) {
    Rng rng(1);
    Linear fc(4, 2, rng);
    const Tensor x({1, 5});
    EXPECT_THROW(fc.forward(x), mime::check_error);
}

// Parameterized gradient sweep across layer geometries.
class ConvGradSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvGradSweep, ParameterGradients) {
    const auto [cin, cout, kernel, stride] = GetParam();
    Rng rng(static_cast<std::uint64_t>(cin * 100 + cout * 10 + kernel));
    Conv2d conv(cin, cout, kernel, stride, kernel / 2, rng);
    const Tensor x = Tensor::randn({2, cin, 6, 6}, rng);
    const auto result = check_parameter_gradients(conv, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGradSweep,
                         ::testing::Values(std::tuple{1, 1, 1, 1},
                                           std::tuple{2, 4, 3, 1},
                                           std::tuple{3, 2, 3, 2},
                                           std::tuple{4, 4, 5, 1},
                                           std::tuple{2, 2, 2, 2}));

}  // namespace
}  // namespace mime::nn
