// Tests for threshold statistics and mask-overlap analysis.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/threshold_analysis.h"
#include "data/task_suite.h"

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config() {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 7;
    return config;
}

data::Batch probe() {
    data::TaskSuiteOptions options;
    options.train_size = 16;
    options.test_size = 16;
    options.cifar100_classes = 10;
    const auto suite = data::make_task_suite(options);
    return suite.family->test_split(suite.cifar10_like).head(8);
}

TEST(ThresholdStats, ConstantSetStatistics) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(0.25f);
    const auto stats = threshold_statistics(
        net.snapshot_thresholds("t"), net.layer_specs());
    ASSERT_EQ(stats.size(), 15u);
    for (const auto& s : stats) {
        EXPECT_DOUBLE_EQ(s.mean, 0.25);
        EXPECT_NEAR(s.stddev, 0.0, 1e-9);
        EXPECT_DOUBLE_EQ(s.min, 0.25);
        EXPECT_DOUBLE_EQ(s.max, 0.25);
        EXPECT_DOUBLE_EQ(s.at_floor_fraction, 0.0);
        EXPECT_GT(s.count, 0);
    }
    EXPECT_EQ(stats[0].layer, "conv1");
    EXPECT_EQ(stats[14].layer, "conv15");
}

TEST(ThresholdStats, FloorFractionCountsClampedNeurons) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(0.5f);
    // Push half of conv1's thresholds to zero.
    Tensor& t = net.site(0).mask().thresholds().value;
    for (std::int64_t i = 0; i < t.numel() / 2; ++i) {
        t[i] = 0.0f;
    }
    const auto stats = threshold_statistics(
        net.snapshot_thresholds("t"), net.layer_specs(), /*floor=*/1e-4f);
    EXPECT_NEAR(stats[0].at_floor_fraction, 0.5, 0.01);
    EXPECT_DOUBLE_EQ(stats[1].at_floor_fraction, 0.0);
}

TEST(ThresholdStats, SizeMismatchRejected) {
    MimeNetwork net(tiny_config());
    ThresholdSet set = net.snapshot_thresholds("t");
    set.thresholds.pop_back();
    EXPECT_THROW(threshold_statistics(set, net.layer_specs()),
                 mime::check_error);
}

TEST(MaskOverlapTest, IdenticalTasksFullyOverlap) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(0.1f);
    const ThresholdSet set = net.snapshot_thresholds("same");
    const auto overlaps = mask_overlap(net, set, set, probe());
    ASSERT_EQ(overlaps.size(), 15u);
    for (const auto& o : overlaps) {
        EXPECT_DOUBLE_EQ(o.jaccard, 1.0) << o.layer;
        EXPECT_DOUBLE_EQ(o.active_fraction_a, o.active_fraction_b);
    }
    EXPECT_DOUBLE_EQ(mean_overlap(overlaps), 1.0);
}

TEST(MaskOverlapTest, DifferentThresholdsPartialOverlap) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(0.05f);
    const ThresholdSet low = net.snapshot_thresholds("low");
    net.reset_thresholds(0.8f);
    const ThresholdSet high = net.snapshot_thresholds("high");

    const auto overlaps = mask_overlap(net, low, high, probe());
    // High thresholds activate a subset of what low thresholds activate,
    // so overlap is strictly below 1 but above 0 at layer 0 (same input).
    EXPECT_LT(overlaps[0].jaccard, 1.0);
    EXPECT_GT(overlaps[0].jaccard, 0.0);
    EXPECT_GT(overlaps[0].active_fraction_a, overlaps[0].active_fraction_b);
}

TEST(MaskOverlapTest, RestoresNetworkState) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(0.42f);
    const ThresholdSet original = net.snapshot_thresholds("original");
    net.set_mode(ActivationMode::relu);

    net.reset_thresholds(0.1f);
    const ThresholdSet a = net.snapshot_thresholds("a");
    net.reset_thresholds(0.2f);
    const ThresholdSet b = net.snapshot_thresholds("b");
    net.load_thresholds(original);
    net.set_mode(ActivationMode::relu);

    mask_overlap(net, a, b, probe());

    EXPECT_EQ(net.mode(), ActivationMode::relu);
    EXPECT_FLOAT_EQ(net.site(0).mask().thresholds().value[0], 0.42f);
}

TEST(MaskOverlapTest, EmptyProbeRejected) {
    MimeNetwork net(tiny_config());
    const ThresholdSet set = net.snapshot_thresholds("t");
    data::Batch empty;
    empty.images = Tensor({1, 3, 32, 32});
    empty.labels = {0};
    // size-1 batch is fine; a zero-size batch cannot be constructed via
    // Dataset::gather, so exercise the guard directly.
    EXPECT_NO_THROW(mask_overlap(net, set, set, empty));
    EXPECT_THROW(mean_overlap({}), mime::check_error);
}

}  // namespace
}  // namespace mime::core
