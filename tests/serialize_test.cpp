// Tests for parameter serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/serialize.h"

namespace mime::nn {
namespace {

Sequential make_net(std::uint64_t seed) {
    Sequential net;
    Rng rng(seed);
    net.emplace<Conv2d>(2, 3, 3, 1, 1, rng);
    net.emplace<Linear>(12, 4, rng);
    return net;
}

TEST(Serialize, RoundTripRestoresValues) {
    Sequential a = make_net(1);
    Sequential b = make_net(2);

    std::stringstream buffer;
    save_parameters(a, buffer);
    load_parameters(b, buffer);

    const auto pa = a.parameters();
    const auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->value.shape(), pb[i]->value.shape());
        for (std::int64_t j = 0; j < pa[i]->value.numel(); ++j) {
            EXPECT_EQ(pa[i]->value[j], pb[i]->value[j]);
        }
    }
}

TEST(Serialize, RejectsBadMagic) {
    Sequential net = make_net(1);
    std::stringstream buffer("not a parameter stream at all");
    EXPECT_THROW(load_parameters(net, buffer), mime::check_error);
}

TEST(Serialize, RejectsStructureMismatch) {
    Sequential a = make_net(1);
    std::stringstream buffer;
    save_parameters(a, buffer);

    Sequential extra;
    Rng rng(3);
    extra.emplace<Conv2d>(2, 3, 3, 1, 1, rng);
    EXPECT_THROW(load_parameters(extra, buffer), mime::check_error);
}

TEST(Serialize, RejectsShapeMismatch) {
    Sequential a = make_net(1);
    std::stringstream buffer;
    save_parameters(a, buffer);

    Sequential b;
    Rng rng(3);
    b.emplace<Conv2d>(2, 3, 3, 1, 1, rng);
    b.emplace<Linear>(12, 5, rng);  // 5 outputs instead of 4
    EXPECT_THROW(load_parameters(b, buffer), mime::check_error);
}

TEST(Serialize, RejectsTruncatedStream) {
    Sequential a = make_net(1);
    std::stringstream buffer;
    save_parameters(a, buffer);
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    Sequential b = make_net(2);
    EXPECT_THROW(load_parameters(b, truncated), mime::check_error);
}

TEST(Serialize, FileRoundTrip) {
    Sequential a = make_net(7);
    Sequential b = make_net(8);
    const std::string path = ::testing::TempDir() + "/mime_params.bin";
    save_parameters_file(a, path);
    load_parameters_file(b, path);
    const auto pa = a.parameters();
    const auto pb = b.parameters();
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i]->value[0], pb[i]->value[0]);
    }
}

TEST(Serialize, MissingFileThrows) {
    Sequential a = make_net(1);
    EXPECT_THROW(load_parameters_file(a, "/nonexistent/path/params.bin"),
                 mime::check_error);
}

}  // namespace
}  // namespace mime::nn
