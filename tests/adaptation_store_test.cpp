// Tests for adaptation serialization and the deployment store.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "core/adaptation_store.h"

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config(std::uint64_t seed = 3) {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = seed;
    return config;
}

TaskAdaptation make_adaptation(MimeNetwork& net, const std::string& name,
                               float threshold_value) {
    net.reset_thresholds(threshold_value);
    return capture_adaptation(net, name, 10);
}

std::string temp_dir(const std::string& leaf) {
    const std::string dir = ::testing::TempDir() + "/" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(AdaptationStream, RoundTrip) {
    MimeNetwork net(tiny_config());
    const TaskAdaptation original = make_adaptation(net, "roundtrip", 0.37f);

    std::stringstream buffer;
    save_adaptation(original, buffer);
    const TaskAdaptation loaded = load_adaptation(buffer);

    EXPECT_EQ(loaded.name, "roundtrip");
    EXPECT_EQ(loaded.num_classes, 10);
    ASSERT_EQ(loaded.thresholds.thresholds.size(),
              original.thresholds.thresholds.size());
    for (std::size_t i = 0; i < loaded.thresholds.thresholds.size(); ++i) {
        const Tensor& a = original.thresholds.thresholds[i];
        const Tensor& b = loaded.thresholds.thresholds[i];
        ASSERT_EQ(a.shape(), b.shape());
        for (std::int64_t j = 0; j < a.numel(); ++j) {
            ASSERT_EQ(a[j], b[j]);
        }
    }
    EXPECT_EQ(loaded.head_weight.shape(), original.head_weight.shape());
    EXPECT_EQ(loaded.head_bias.shape(), original.head_bias.shape());
}

TEST(AdaptationStream, RejectsGarbage) {
    std::stringstream buffer("garbage bytes that are not an adaptation");
    EXPECT_THROW(load_adaptation(buffer), mime::check_error);
}

TEST(AdaptationStream, RejectsTruncation) {
    MimeNetwork net(tiny_config());
    const TaskAdaptation original = make_adaptation(net, "trunc", 0.1f);
    std::stringstream buffer;
    save_adaptation(original, buffer);
    const std::string bytes = buffer.str();
    std::stringstream cut(bytes.substr(0, bytes.size() * 2 / 3));
    EXPECT_THROW(load_adaptation(cut), mime::check_error);
}

TEST(AdaptationStore, BackboneRoundTrip) {
    MimeNetwork net_a(tiny_config(5));
    MimeNetwork net_b(tiny_config(6));
    AdaptationStore store(temp_dir("store_backbone"));
    EXPECT_FALSE(store.has_backbone());
    store.save_backbone(net_a);
    EXPECT_TRUE(store.has_backbone());
    EXPECT_GT(store.backbone_bytes(), 0);

    store.load_backbone(net_b);
    const auto pa = net_a.backbone_parameters();
    const auto pb = net_b.backbone_parameters();
    for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->value[0], pb[i]->value[0]);
    }
}

TEST(AdaptationStore, TaskManifestLifecycle) {
    MimeNetwork net(tiny_config());
    AdaptationStore store(temp_dir("store_tasks"));
    EXPECT_TRUE(store.task_names().empty());
    EXPECT_FALSE(store.has_task("alpha"));

    store.save_task(make_adaptation(net, "beta", 0.2f));
    store.save_task(make_adaptation(net, "alpha", 0.1f));
    store.save_task(make_adaptation(net, "alpha", 0.15f));  // overwrite

    const auto names = store.task_names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");  // sorted, deduplicated
    EXPECT_EQ(names[1], "beta");
    EXPECT_TRUE(store.has_task("alpha"));
    EXPECT_GT(store.adaptation_bytes(), 0);

    const TaskAdaptation alpha = store.load_task("alpha");
    EXPECT_FLOAT_EQ(alpha.thresholds.thresholds[0][0], 0.15f);
}

TEST(AdaptationStore, LoadAllIntoEngine) {
    MimeNetwork net(tiny_config());
    AdaptationStore store(temp_dir("store_engine"));
    store.save_task(make_adaptation(net, "a", 0.1f));
    store.save_task(make_adaptation(net, "b", 0.2f));

    MultiTaskEngine engine(net);
    EXPECT_EQ(store.load_all_into(engine), 2);
    EXPECT_EQ(engine.task_count(MultiTaskEngine::Scheme::mime), 2);
}

TEST(AdaptationStore, RejectsPathTricks) {
    MimeNetwork net(tiny_config());
    AdaptationStore store(temp_dir("store_paths"));
    TaskAdaptation bad = make_adaptation(net, "../escape", 0.1f);
    EXPECT_THROW(store.save_task(bad), mime::check_error);
    bad.name = "a/b";
    EXPECT_THROW(store.save_task(bad), mime::check_error);
    bad.name = "";
    EXPECT_THROW(store.save_task(bad), mime::check_error);
}

TEST(AdaptationStore, MissingTaskThrows) {
    AdaptationStore store(temp_dir("store_missing"));
    EXPECT_THROW(store.load_task("nope"), mime::check_error);
}

TEST(AdaptationStore, CorruptFileFailsLoudly) {
    MimeNetwork net(tiny_config());
    const std::string dir = temp_dir("store_corrupt");
    AdaptationStore store(dir);
    store.save_task(make_adaptation(net, "victim", 0.1f));
    {
        std::ofstream f(dir + "/task_victim.mta",
                        std::ios::binary | std::ios::trunc);
        f << "corrupted";
    }
    EXPECT_THROW(store.load_task("victim"), mime::check_error);
}

TEST(AdaptationStore, AdaptationsMuchSmallerThanBackbone) {
    // The physical artifact mirrors the storage model: an adaptation file
    // is a small fraction of the backbone file.
    MimeNetwork net(tiny_config());
    AdaptationStore store(temp_dir("store_sizes"));
    store.save_backbone(net);
    store.save_task(make_adaptation(net, "t", 0.1f));
    EXPECT_LT(store.adaptation_bytes(), store.backbone_bytes());
}

}  // namespace
}  // namespace mime::core
