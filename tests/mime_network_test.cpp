// Tests for MimeNetwork: construction, mode switching, threshold sets,
// backbone snapshots and freezing, plus the planned executor
// (ForwardPlan + Workspace): bit-match against the legacy forward,
// zero allocations after warm-up, and eval-mode cache hygiene.
#include <gtest/gtest.h>

#include "arch/plain_cnn.h"
#include "common/check.h"
#include "core/forward_plan.h"
#include "core/mime_network.h"
#include "tensor/workspace.h"

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config() {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;  // channels 4..32
    config.vgg.num_classes = 10;
    config.seed = 3;
    return config;
}

TEST(MimeNetwork, HasFifteenSites) {
    MimeNetwork net(tiny_config());
    EXPECT_EQ(net.site_count(), 15);
    EXPECT_EQ(net.site_name(0), "conv1");
    EXPECT_EQ(net.site_name(13), "conv14");
    EXPECT_EQ(net.site_name(14), "conv15");
}

TEST(MimeNetwork, ForwardProducesLogits) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    Rng rng(1);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    const Tensor logits = net.forward(x);
    EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

TEST(MimeNetwork, ModeSwitchesAllSites) {
    MimeNetwork net(tiny_config());
    net.set_mode(ActivationMode::threshold);
    for (std::int64_t i = 0; i < net.site_count(); ++i) {
        EXPECT_EQ(net.site(i).mode(), ActivationMode::threshold);
    }
    net.set_mode(ActivationMode::relu);
    for (std::int64_t i = 0; i < net.site_count(); ++i) {
        EXPECT_EQ(net.site(i).mode(), ActivationMode::relu);
    }
}

TEST(MimeNetwork, ThresholdAndReluOutputsDiffer) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    Rng rng(2);
    const Tensor x = Tensor::randn({1, 3, 32, 32}, rng);

    net.set_mode(ActivationMode::relu);
    const Tensor relu_logits = net.forward(x);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.5f);
    const Tensor mask_logits = net.forward(x);

    bool differs = false;
    for (std::int64_t i = 0; i < relu_logits.numel(); ++i) {
        if (relu_logits[i] != mask_logits[i]) {
            differs = true;
            break;
        }
    }
    EXPECT_TRUE(differs);
}

TEST(MimeNetwork, ThresholdModeSparserThanRelu) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    Rng rng(4);
    const Tensor x = Tensor::randn({4, 3, 32, 32}, rng);

    net.set_mode(ActivationMode::relu);
    net.forward(x);
    const auto relu_sparsity = net.last_site_sparsities();

    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.2f);  // positive thresholds prune more than ReLU
    net.forward(x);
    const auto mask_sparsity = net.last_site_sparsities();

    // With t >= 0, {y >= t} ⊆ {y > 0} up to boundary ties, so the mask
    // can only be sparser (checked per layer).
    for (std::size_t i = 0; i < relu_sparsity.size(); ++i) {
        EXPECT_GE(mask_sparsity[i] + 1e-9, relu_sparsity[i]) << "site " << i;
    }
}

TEST(MimeNetwork, SnapshotAndLoadThresholds) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(0.3f);
    const ThresholdSet set_a = net.snapshot_thresholds("task-a");
    EXPECT_EQ(set_a.task_name, "task-a");
    EXPECT_EQ(set_a.thresholds.size(), 15u);

    net.reset_thresholds(0.9f);
    const ThresholdSet set_b = net.snapshot_thresholds("task-b");

    net.load_thresholds(set_a);
    EXPECT_FLOAT_EQ(net.site(0).mask().thresholds().value[0], 0.3f);
    net.load_thresholds(set_b);
    EXPECT_FLOAT_EQ(net.site(0).mask().thresholds().value[0], 0.9f);
}

TEST(MimeNetwork, ThresholdSetParameterCountMatchesNeurons) {
    MimeNetwork net(tiny_config());
    const ThresholdSet set = net.snapshot_thresholds("t");
    std::int64_t neurons = 0;
    for (const auto& spec : net.layer_specs()) {
        neurons += spec.neuron_count();
    }
    EXPECT_EQ(set.parameter_count(), neurons);
}

TEST(MimeNetwork, LoadRejectsWrongSiteCount) {
    MimeNetwork net(tiny_config());
    ThresholdSet bad;
    bad.thresholds.resize(3, Tensor({4}));
    EXPECT_THROW(net.load_thresholds(bad), mime::check_error);
}

TEST(MimeNetwork, FreezeBackboneTogglesTrainable) {
    MimeNetwork net(tiny_config());
    net.freeze_backbone(true);
    for (const auto* p : net.backbone_parameters()) {
        EXPECT_FALSE(p->trainable);
    }
    // Thresholds stay trainable.
    for (auto* p : net.threshold_parameters()) {
        EXPECT_TRUE(p->trainable);
    }
    net.freeze_backbone(false);
    for (const auto* p : net.backbone_parameters()) {
        EXPECT_TRUE(p->trainable);
    }
}

TEST(MimeNetwork, BackboneSnapshotRoundTrip) {
    MimeNetwork net(tiny_config());
    const auto snapshot = net.snapshot_backbone();
    const float original = net.backbone_parameters()[0]->value[0];

    net.backbone_parameters()[0]->value[0] = original + 5.0f;
    net.load_backbone(snapshot);
    EXPECT_FLOAT_EQ(net.backbone_parameters()[0]->value[0], original);
}

TEST(MimeNetwork, ParameterGroupsArePartition) {
    MimeNetwork net(tiny_config());
    const auto backbone = net.backbone_parameters();
    const auto thresholds = net.threshold_parameters();
    const auto all = net.all_parameters();
    EXPECT_EQ(all.size(), backbone.size() + thresholds.size());
    EXPECT_EQ(thresholds.size(), 15u);
    // Threshold parameter names carry their site names.
    EXPECT_EQ(thresholds[0]->name, "conv1.thresholds");
    EXPECT_EQ(thresholds[14]->name, "conv15.thresholds");
}

TEST(MimeNetwork, RegularizationAggregatesAcrossSites) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(0.0f);
    std::int64_t neurons = 0;
    for (const auto& spec : net.layer_specs()) {
        neurons += spec.neuron_count();
    }
    // exp(0) = 1 per neuron.
    EXPECT_NEAR(net.threshold_regularization_loss(),
                static_cast<double>(neurons), 1e-3);
}

TEST(MimeNetwork, ClampAppliesEverywhere) {
    MimeNetwork net(tiny_config());
    net.reset_thresholds(-1.0f);
    net.clamp_thresholds(0.0f);
    for (auto* p : net.threshold_parameters()) {
        EXPECT_GE(min_value(p->value), 0.0f);
    }
}

TEST(MimeNetwork, BatchNormVariantBuilds) {
    MimeNetworkConfig config = tiny_config();
    config.batchnorm = true;
    MimeNetwork net(config);
    Rng rng(1);
    net.set_training(true);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    EXPECT_EQ(net.forward(x).shape(), Shape({2, 10}));
    // BN adds gamma/beta per conv layer: 13 * 2 extra parameters.
    EXPECT_EQ(net.backbone_parameters().size(), 15u * 2 + 13u * 2 + 2u);
}

TEST(MimeNetwork, SharedBackboneCloneAliasesWeightsNotHead) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.3f);
    auto replica = net.clone_with_shared_backbone();

    EXPECT_TRUE(net.shares_backbone_with(*replica));
    EXPECT_EQ(replica->mode(), ActivationMode::threshold);
    auto mine = net.backbone_parameters();
    auto theirs = replica->backbone_parameters();
    ASSERT_EQ(mine.size(), theirs.size());
    for (std::size_t i = 0; i + 2 < mine.size(); ++i) {
        EXPECT_TRUE(mine[i]->value.aliases(theirs[i]->value))
            << "parameter " << i << " (" << mine[i]->name
            << ") was duplicated";
    }
    // The classifier head is per-replica (serving installs a task head
    // into it), equal in value but not in storage.
    for (std::size_t i = mine.size() - 2; i < mine.size(); ++i) {
        EXPECT_FALSE(mine[i]->value.aliases(theirs[i]->value));
        for (std::int64_t n = 0; n < mine[i]->value.numel(); ++n) {
            ASSERT_EQ(mine[i]->value[n], theirs[i]->value[n]);
        }
    }
    EXPECT_GT(net.shared_backbone_bytes(), 0);
}

TEST(MimeNetwork, SharedBackboneCloneForwardsBitMatch) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.25f);
    auto replica = net.clone_with_shared_backbone();

    Rng rng(9);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    const Tensor expected = net.forward(x);
    const Tensor actual = replica->forward(x);
    ASSERT_EQ(actual.shape(), expected.shape());
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(actual[i], expected[i]);
    }

    // Per-replica threshold installs must not leak across replicas:
    // blunting the replica's thresholds changes its output only.
    replica->reset_thresholds(5.0f);
    const Tensor after_replica_change = net.forward(x);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(after_replica_change[i], expected[i]);
    }
}

TEST(MimeNetwork, LoadBackboneKeepsReplicasAliased) {
    // load_backbone must restore values in place: reallocating would
    // silently detach every shared-backbone replica.
    MimeNetwork net(tiny_config());
    net.set_training(false);
    auto replica = net.clone_with_shared_backbone();
    const std::vector<Tensor> snapshot = net.snapshot_backbone();

    net.backbone_parameters()[0]->value.fill(0.0f);
    net.load_backbone(snapshot);
    EXPECT_TRUE(net.shares_backbone_with(*replica));
    // The replica observes the restored values through the shared
    // storage.
    EXPECT_EQ(replica->backbone_parameters()[0]->value[0], snapshot[0][0]);
}

// ---------------------------------------------------------------------------
// Planned executor: ForwardPlan + Workspace
// ---------------------------------------------------------------------------

MimeNetworkConfig plain_cnn_config() {
    arch::PlainCnnConfig cnn;
    cnn.input_size = 32;
    cnn.blocks = {{8, 2}, {16, 2}};
    cnn.fc_widths = {32};
    cnn.num_classes = 10;
    MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(cnn);
    config.custom_classifier = arch::plain_cnn_classifier(cnn);
    config.seed = 11;
    return config;
}

/// Planned forward must bit-match the legacy module-graph forward at
/// every batch size, for the given network as currently configured.
void expect_planned_matches_legacy(MimeNetwork& net, std::uint64_t seed) {
    Workspace workspace;
    Rng rng(seed);
    for (const std::int64_t batch : {1, 7, 32}) {
        const Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
        net.set_eval_mode(false);
        const Tensor expected = net.forward(x);  // legacy allocate-per-call
        net.set_eval_mode(true);
        const Tensor& planned = net.forward_planned(x, workspace);
        ASSERT_EQ(planned.shape(), expected.shape()) << "batch " << batch;
        for (std::int64_t i = 0; i < expected.numel(); ++i) {
            ASSERT_EQ(planned[i], expected[i])
                << "batch " << batch << " element " << i;
        }
    }
    net.set_eval_mode(false);
}

TEST(ForwardPlan, BitMatchesLegacyForwardVggThreshold) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.15f);
    expect_planned_matches_legacy(net, 21);
}

TEST(ForwardPlan, BitMatchesLegacyForwardVggRelu) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_mode(ActivationMode::relu);
    expect_planned_matches_legacy(net, 22);
}

TEST(ForwardPlan, BitMatchesLegacyForwardPlainCnn) {
    MimeNetwork net(plain_cnn_config());
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.1f);
    expect_planned_matches_legacy(net, 23);
}

TEST(ForwardPlan, BitMatchesLegacyForwardWithBatchNorm) {
    MimeNetworkConfig config = tiny_config();
    config.batchnorm = true;
    MimeNetwork net(config);
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.1f);
    expect_planned_matches_legacy(net, 24);
}

TEST(ForwardPlan, TracksThresholdSwapMidStream) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.05f);
    const ThresholdSet set_a = net.snapshot_thresholds("a");
    net.reset_thresholds(0.4f);
    const ThresholdSet set_b = net.snapshot_thresholds("b");

    Rng rng(31);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    net.load_thresholds(set_a);
    const Tensor expected_a = net.forward(x);
    net.load_thresholds(set_b);
    const Tensor expected_b = net.forward(x);

    // One plan serves both tasks: thresholds are read live, so a swap
    // between batches needs no rebuild.
    Workspace workspace;
    net.set_eval_mode(true);
    net.load_thresholds(set_a);
    const Tensor planned_a = net.forward_planned(x, workspace);  // copy out
    net.load_thresholds(set_b);
    const Tensor& planned_b = net.forward_planned(x, workspace);
    for (std::int64_t i = 0; i < expected_a.numel(); ++i) {
        ASSERT_EQ(planned_a[i], expected_a[i]);
        ASSERT_EQ(planned_b[i], expected_b[i]);
    }
    // The two outputs genuinely differ (the swap had an effect).
    bool differs = false;
    for (std::int64_t i = 0; i < expected_a.numel(); ++i) {
        differs = differs || (expected_a[i] != expected_b[i]);
    }
    EXPECT_TRUE(differs);
}

TEST(ForwardPlan, ZeroTensorAllocationsAfterWarmup) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    net.reset_thresholds(0.1f);
    net.set_eval_mode(true);

    Rng rng(41);
    const Tensor x = Tensor::randn({4, 3, 32, 32}, rng);
    Workspace workspace;
    net.forward_planned(x, workspace);  // warm-up: plan build + reserve

    const std::int64_t allocations = Tensor::storage_allocation_count();
    const std::int64_t bytes = Tensor::storage_allocation_bytes();
    for (int iter = 0; iter < 3; ++iter) {
        const Tensor& logits = net.forward_planned(x, workspace);
        ASSERT_EQ(logits.shape(), Shape({4, 10}));
    }
    EXPECT_EQ(Tensor::storage_allocation_count(), allocations)
        << "planned forward allocated tensor storage after warm-up";
    EXPECT_EQ(Tensor::storage_allocation_bytes(), bytes);

    // Steady-state scratch is bounded by the reserved capacity and is
    // the maximum im2col footprint, not the sum over layers.
    EXPECT_GT(workspace.peak_bytes(), 0u);
    EXPECT_LE(workspace.peak_bytes(), workspace.capacity_bytes());
    EXPECT_EQ(workspace.used_bytes(), 0u);  // every step rewound
    EXPECT_EQ(net.planned_workspace_bytes(), workspace.peak_bytes());
}

TEST(ForwardPlan, PlanIsPerBatchSizeAndReusesWorkspace) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_eval_mode(true);
    ForwardPlan& plan2 = net.plan_for(2);
    ForwardPlan& plan5 = net.plan_for(5);
    EXPECT_EQ(plan2.batch_size(), 2);
    EXPECT_EQ(plan5.batch_size(), 5);
    EXPECT_EQ(&plan2, &net.plan_for(2));  // cached, not rebuilt
    EXPECT_EQ(plan2.input_shape(), Shape({2, 3, 32, 32}));
    EXPECT_GT(plan2.workspace_bytes(), 0u);
    EXPECT_GT(plan5.buffer_bytes(), plan2.buffer_bytes());
    // One workspace serves every batch size (max, not sum).
    EXPECT_EQ(net.planned_workspace_bytes(),
              std::max(plan2.workspace_bytes(), plan5.workspace_bytes()));
}

TEST(ForwardPlan, RunSelfHealsAStaleWorkspaceOffset) {
    // A batch that throws between a conv's scratch alloc and its rewind
    // leaves the workspace offset dangling; the next run must discard
    // it and proceed instead of failing forever.
    MimeNetwork net(tiny_config());
    net.set_training(false);
    net.set_eval_mode(true);
    Rng rng(61);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
    Workspace workspace;
    const Tensor expected = net.forward_planned(x, workspace);

    workspace.alloc_floats(32);  // simulate an aborted batch's leftovers
    const Tensor& healed = net.forward_planned(x, workspace);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(healed[i], expected[i]);
    }
    EXPECT_EQ(workspace.used_bytes(), 0u);
}

TEST(ForwardPlan, RequiresEvalMode) {
    MimeNetwork net(tiny_config());
    net.set_training(false);
    Workspace workspace;
    Rng rng(1);
    const Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
    EXPECT_THROW(net.forward_planned(x, workspace), mime::check_error);
}

TEST(MimeNetwork, EvalModeForwardRetainsNoCachedState) {
    MimeNetworkConfig config = tiny_config();
    config.batchnorm = true;  // BN batch-stat buffers are covered too
    MimeNetwork net(config);
    net.set_training(false);
    net.set_mode(ActivationMode::threshold);
    Rng rng(51);
    const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);

    // Without eval mode the graph retains backward-only caches even in
    // inference mode (that is what threshold training relies on)...
    net.forward(x);
    EXPECT_GT(net.cached_state_bytes(), 0);

    // ...entering eval mode releases them, and eval forwards (legacy
    // and planned alike) leave none behind.
    net.set_eval_mode(true);
    EXPECT_EQ(net.cached_state_bytes(), 0);
    net.forward(x);
    EXPECT_EQ(net.cached_state_bytes(), 0);
    Workspace workspace;
    net.forward_planned(x, workspace);
    EXPECT_EQ(net.cached_state_bytes(), 0);
}

TEST(MimeNetwork, BatchNormCloneSharesRunningStatistics) {
    MimeNetworkConfig config = tiny_config();
    config.batchnorm = true;
    MimeNetwork net(config);
    net.set_training(false);
    auto replica = net.clone_with_shared_backbone();
    auto mine = net.network().buffers();
    auto theirs = replica->network().buffers();
    ASSERT_EQ(mine.size(), theirs.size());
    ASSERT_GT(mine.size(), 0u);
    for (std::size_t i = 0; i < mine.size(); ++i) {
        EXPECT_TRUE(mine[i]->value.aliases(theirs[i]->value));
    }
}

}  // namespace
}  // namespace mime::core
