// Tests for the multi-task inference engine (Pipelined task mode
// semantics at the functional level).
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/multitask.h"
#include "data/task_suite.h"
#include "tensor/tensor_ops.h"

using mime::batch_slice;

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config() {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 9;
    return config;
}

struct Fixture {
    data::TaskSuite suite;
    data::Dataset task_a;
    data::Dataset task_b;

    Fixture() {
        data::TaskSuiteOptions options;
        options.train_size = 16;
        options.test_size = 16;
        options.cifar100_classes = 10;
        suite = data::make_task_suite(options);
        task_a = suite.family->test_split(suite.cifar10_like);
        task_b = suite.family->test_split(suite.fmnist_like);
    }
};

TEST(Interleave, RoundRobinOrder) {
    Fixture f;
    const auto items = interleave_tasks({&f.task_a, &f.task_b}, 3);
    ASSERT_EQ(items.size(), 6u);
    EXPECT_EQ(items[0].task, 0);
    EXPECT_EQ(items[1].task, 1);
    EXPECT_EQ(items[2].task, 0);
    EXPECT_EQ(items[5].task, 1);
    EXPECT_EQ(items[0].label, f.task_a.labels()[0]);
    EXPECT_EQ(items[3].label, f.task_b.labels()[1]);
}

TEST(Interleave, RejectsOversizedRequest) {
    Fixture f;
    EXPECT_THROW(interleave_tasks({&f.task_a}, 1000), mime::check_error);
    EXPECT_THROW(interleave_tasks({}, 1), mime::check_error);
}

TEST(Engine, MimeTaskSwitchingCounts) {
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);

    net.reset_thresholds(0.1f);
    engine.register_mime_task(capture_adaptation(net, "a", 10));
    net.reset_thresholds(0.6f);
    engine.register_mime_task(capture_adaptation(net, "b", 10));
    EXPECT_EQ(engine.task_count(MultiTaskEngine::Scheme::mime), 2);

    const auto items = interleave_tasks({&f.task_a, &f.task_b}, 3);
    engine.predict(MultiTaskEngine::Scheme::mime, items);
    // 6 interleaved items alternating tasks → 6 threshold swaps, zero
    // backbone swaps.
    EXPECT_EQ(engine.threshold_switches(), 6);
    EXPECT_EQ(engine.backbone_switches(), 0);
}

TEST(Engine, SingularModeSwitchesOnce) {
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);
    net.reset_thresholds(0.1f);
    engine.register_mime_task(capture_adaptation(net, "a", 10));

    std::vector<PipelinedItem> items;
    for (std::int64_t i = 0; i < 4; ++i) {
        PipelinedItem item;
        item.image = batch_slice(f.task_a.images(), i);
        item.task = 0;
        items.push_back(std::move(item));
    }
    engine.predict(MultiTaskEngine::Scheme::mime, items);
    EXPECT_EQ(engine.threshold_switches(), 1);
}

TEST(Engine, ConventionalSwitchesFullBackbone) {
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);
    engine.register_conventional_task("a", net.snapshot_backbone(), 10);
    net.backbone_parameters()[0]->value[0] += 1.0f;  // distinct model
    engine.register_conventional_task("b", net.snapshot_backbone(), 10);

    const auto items = interleave_tasks({&f.task_a, &f.task_b}, 2);
    engine.predict(MultiTaskEngine::Scheme::conventional, items);
    EXPECT_EQ(engine.backbone_switches(), 4);
    EXPECT_EQ(engine.threshold_switches(), 0);
}

TEST(Engine, PipelinedPredictionsMatchSingular) {
    // Parameter swapping must be transparent: predictions in interleaved
    // order equal predictions computed task-by-task.
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);
    net.reset_thresholds(0.05f);
    engine.register_mime_task(capture_adaptation(net, "a", 10));
    net.reset_thresholds(0.4f);
    engine.register_mime_task(capture_adaptation(net, "b", 10));

    const auto interleaved = interleave_tasks({&f.task_a, &f.task_b}, 4);
    const auto mixed =
        engine.predict(MultiTaskEngine::Scheme::mime, interleaved);

    // Singular runs.
    std::vector<PipelinedItem> only_a;
    std::vector<PipelinedItem> only_b;
    for (const auto& item : interleaved) {
        (item.task == 0 ? only_a : only_b).push_back(item);
    }
    const auto pa = engine.predict(MultiTaskEngine::Scheme::mime, only_a);
    const auto pb = engine.predict(MultiTaskEngine::Scheme::mime, only_b);

    std::size_t ia = 0;
    std::size_t ib = 0;
    for (std::size_t i = 0; i < interleaved.size(); ++i) {
        if (interleaved[i].task == 0) {
            EXPECT_EQ(mixed[i], pa[ia++]) << "item " << i;
        } else {
            EXPECT_EQ(mixed[i], pb[ib++]) << "item " << i;
        }
    }
}

TEST(Engine, PredictionRestrictedToTaskClasses) {
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);
    net.reset_thresholds(0.1f);
    // Task with only 3 classes: predictions must stay in [0, 3).
    engine.register_mime_task(capture_adaptation(net, "small", 3));
    std::vector<PipelinedItem> items;
    for (std::int64_t i = 0; i < 8; ++i) {
        PipelinedItem item;
        item.image = batch_slice(f.task_a.images(), i);
        item.task = 0;
        items.push_back(std::move(item));
    }
    for (const auto p : engine.predict(MultiTaskEngine::Scheme::mime, items)) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, 3);
    }
}

TEST(Engine, AccuracyNeedsLabels) {
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);
    net.reset_thresholds(0.1f);
    engine.register_mime_task(capture_adaptation(net, "a", 10));
    PipelinedItem unlabeled;
    unlabeled.image = batch_slice(f.task_a.images(), 0);
    unlabeled.task = 0;
    unlabeled.label = -1;
    EXPECT_THROW(engine.accuracy(MultiTaskEngine::Scheme::mime, {unlabeled}),
                 mime::check_error);
}

TEST(Engine, UnknownTaskRejected) {
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);
    net.reset_thresholds(0.1f);
    engine.register_mime_task(capture_adaptation(net, "a", 10));
    PipelinedItem item;
    item.image = batch_slice(f.task_a.images(), 0);
    item.task = 5;
    EXPECT_THROW(engine.predict(MultiTaskEngine::Scheme::mime, {item}),
                 mime::check_error);
}

TEST(Engine, ResetCountersForcesReload) {
    Fixture f;
    MimeNetwork net(tiny_config());
    MultiTaskEngine engine(net);
    net.reset_thresholds(0.1f);
    engine.register_mime_task(capture_adaptation(net, "a", 10));
    PipelinedItem item;
    item.image = batch_slice(f.task_a.images(), 0);
    item.task = 0;
    engine.predict(MultiTaskEngine::Scheme::mime, {item});
    engine.reset_switch_counters();
    EXPECT_EQ(engine.threshold_switches(), 0);
    engine.predict(MultiTaskEngine::Scheme::mime, {item});
    EXPECT_EQ(engine.threshold_switches(), 1);
}

}  // namespace
}  // namespace mime::core
