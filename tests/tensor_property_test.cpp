// Parameterized algebraic property tests for the tensor substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace mime {
namespace {

class TensorAlgebra
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
protected:
    Tensor random(Shape shape) {
        Rng rng(std::get<1>(GetParam()));
        return Tensor::randn(std::move(shape), rng);
    }
    std::int64_t n() const { return std::get<0>(GetParam()); }
};

TEST_P(TensorAlgebra, AdditionCommutes) {
    Rng rng(std::get<1>(GetParam()));
    const Tensor a = Tensor::randn({n()}, rng);
    const Tensor b = Tensor::randn({n()}, rng);
    const Tensor ab = add(a, b);
    const Tensor ba = add(b, a);
    for (std::int64_t i = 0; i < ab.numel(); ++i) {
        EXPECT_EQ(ab[i], ba[i]);
    }
}

TEST_P(TensorAlgebra, SubThenAddRoundTrips) {
    Rng rng(std::get<1>(GetParam()));
    const Tensor a = Tensor::randn({n()}, rng);
    const Tensor b = Tensor::randn({n()}, rng);
    const Tensor restored = add(sub(a, b), b);
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_NEAR(restored[i], a[i], 1e-5f);
    }
}

TEST_P(TensorAlgebra, ScalarDistributesOverAddition) {
    Rng rng(std::get<1>(GetParam()));
    const Tensor a = Tensor::randn({n()}, rng);
    const Tensor b = Tensor::randn({n()}, rng);
    const Tensor lhs = mul(add(a, b), 2.5f);
    const Tensor rhs = add(mul(a, 2.5f), mul(b, 2.5f));
    for (std::int64_t i = 0; i < lhs.numel(); ++i) {
        EXPECT_NEAR(lhs[i], rhs[i], 1e-4f);
    }
}

TEST_P(TensorAlgebra, NormTriangleInequality) {
    Rng rng(std::get<1>(GetParam()));
    const Tensor a = Tensor::randn({n()}, rng);
    const Tensor b = Tensor::randn({n()}, rng);
    EXPECT_LE(l2_norm(add(a, b)), l2_norm(a) + l2_norm(b) + 1e-4f);
}

TEST_P(TensorAlgebra, ZeroFractionComplementsAfterMasking) {
    Rng rng(std::get<1>(GetParam()));
    Tensor a = Tensor::randn({n()}, rng);
    // Mask the negative half exactly.
    std::int64_t zeros = 0;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        if (a[i] < 0.0f) {
            a[i] = 0.0f;
            ++zeros;
        }
    }
    EXPECT_DOUBLE_EQ(zero_fraction(a),
                     static_cast<double>(zeros) /
                         static_cast<double>(a.numel()));
}

TEST_P(TensorAlgebra, SumIsLinear) {
    Rng rng(std::get<1>(GetParam()));
    const Tensor a = Tensor::randn({n()}, rng);
    const Tensor b = Tensor::randn({n()}, rng);
    EXPECT_NEAR(sum(add(a, b)), sum(a) + sum(b), 1e-3f);
    EXPECT_NEAR(sum(mul(a, 3.0f)), 3.0f * sum(a), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(SizesAndSeeds, TensorAlgebra,
                         ::testing::Combine(::testing::Values(1, 7, 64, 513),
                                            ::testing::Values(1u, 42u, 99u)));

class MatmulAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulAlgebra, AssociativityHolds) {
    Rng rng(GetParam());
    const Tensor a = Tensor::randn({5, 7}, rng);
    const Tensor b = Tensor::randn({7, 3}, rng);
    const Tensor c = Tensor::randn({3, 4}, rng);
    const Tensor left = matmul(matmul(a, b), c);
    const Tensor right = matmul(a, matmul(b, c));
    for (std::int64_t i = 0; i < left.numel(); ++i) {
        EXPECT_NEAR(left[i], right[i], 1e-3f);
    }
}

TEST_P(MatmulAlgebra, IdentityIsNeutral) {
    Rng rng(GetParam());
    const Tensor a = Tensor::randn({6, 6}, rng);
    Tensor eye({6, 6});
    for (std::int64_t i = 0; i < 6; ++i) {
        eye.at({i, i}) = 1.0f;
    }
    const Tensor left = matmul(eye, a);
    const Tensor right = matmul(a, eye);
    for (std::int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_NEAR(left[i], a[i], 1e-5f);
        EXPECT_NEAR(right[i], a[i], 1e-5f);
    }
}

TEST_P(MatmulAlgebra, DistributesOverAddition) {
    Rng rng(GetParam());
    const Tensor a = Tensor::randn({4, 5}, rng);
    const Tensor b = Tensor::randn({5, 3}, rng);
    const Tensor c = Tensor::randn({5, 3}, rng);
    const Tensor lhs = matmul(a, add(b, c));
    const Tensor rhs = add(matmul(a, b), matmul(a, c));
    for (std::int64_t i = 0; i < lhs.numel(); ++i) {
        EXPECT_NEAR(lhs[i], rhs[i], 1e-3f);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulAlgebra,
                         ::testing::Values(3u, 17u, 1234u));

TEST(SoftmaxProperty, InvariantToRowShift) {
    Rng rng(8);
    const Tensor logits = Tensor::randn({3, 6}, rng);
    Tensor shifted = logits;
    for (std::int64_t r = 0; r < 3; ++r) {
        for (std::int64_t c = 0; c < 6; ++c) {
            shifted.at({r, c}) += 37.5f;  // per-row constant shift
        }
    }
    const Tensor p1 = softmax_rows(logits);
    const Tensor p2 = softmax_rows(shifted);
    for (std::int64_t i = 0; i < p1.numel(); ++i) {
        EXPECT_NEAR(p1[i], p2[i], 1e-5f);
    }
}

}  // namespace
}  // namespace mime
