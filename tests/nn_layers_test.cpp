// Tests for ReLU / Flatten / Dropout / pooling layers, including the
// planned-executor eval-mode variants (fused in-place ReLU, cache-free
// max pooling).
#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/gradcheck.h"
#include "nn/layers.h"
#include "nn/pooling.h"

namespace mime::nn {
namespace {

TEST(ReLU, EvalInplaceBitMatchesForwardAndKeepsNoMask) {
    ReLU relu;
    Rng rng(3);
    const Tensor x = Tensor::randn({2, 8}, rng);
    const Tensor expected = relu.forward(x);
    const double expected_sparsity = relu.last_sparsity();

    relu.set_eval_mode(true);
    EXPECT_EQ(relu.cached_state_bytes(), 0);
    Tensor inplace = x;
    relu.forward_eval_inplace(inplace);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(inplace[i], expected[i]);
    }
    EXPECT_DOUBLE_EQ(relu.last_sparsity(), expected_sparsity);
    EXPECT_EQ(relu.cached_state_bytes(), 0);
}

TEST(MaxPool2d, ForwardIntoBitMatchesForwardWithoutArgmaxState) {
    MaxPool2d pool(2, 2);
    Rng rng(5);
    const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
    const Tensor expected = pool.forward(x);
    EXPECT_GT(pool.cached_state_bytes(), 0);  // argmax kept for backward

    pool.set_eval_mode(true);
    EXPECT_EQ(pool.cached_state_bytes(), 0);
    Tensor out(pool.output_shape(x.shape()));
    ASSERT_EQ(out.shape(), expected.shape());
    pool.forward_into(x, out);
    for (std::int64_t i = 0; i < expected.numel(); ++i) {
        ASSERT_EQ(out[i], expected[i]);
    }
    EXPECT_EQ(pool.cached_state_bytes(), 0);
}

TEST(Dropout, EvalModePassesThroughWithoutScaleCache) {
    Rng rng(7);
    Dropout dropout(0.5, rng);
    dropout.set_training(false);
    dropout.set_eval_mode(true);
    const Tensor x = Tensor::randn({2, 4}, rng);
    const Tensor y = dropout.forward(x);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        ASSERT_EQ(y[i], x[i]);
    }
    EXPECT_EQ(dropout.cached_state_bytes(), 0);
}

TEST(ReLU, ForwardMasksNegatives) {
    ReLU relu;
    const Tensor x({1, 4}, std::vector<float>{-1, 0, 2, -3});
    const Tensor y = relu.forward(x);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 0.0f);
    EXPECT_EQ(y[2], 2.0f);
    EXPECT_EQ(y[3], 0.0f);
    EXPECT_DOUBLE_EQ(relu.last_sparsity(), 0.75);
}

TEST(ReLU, BackwardPassesThroughPositives) {
    ReLU relu;
    const Tensor x({1, 3}, std::vector<float>{-1, 2, 3});
    relu.forward(x);
    const Tensor g({1, 3}, std::vector<float>{10, 20, 30});
    const Tensor gi = relu.backward(g);
    EXPECT_EQ(gi[0], 0.0f);
    EXPECT_EQ(gi[1], 20.0f);
    EXPECT_EQ(gi[2], 30.0f);
}

TEST(ReLU, GradCheck) {
    ReLU relu;
    Rng rng(3);
    // Keep values away from the kink at 0.
    Tensor x = Tensor::randn({2, 8}, rng);
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        if (std::abs(x[i]) < 0.2f) {
            x[i] = 0.5f;
        }
    }
    const auto result = check_input_gradient(relu, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Flatten, RoundTrip) {
    Flatten flatten;
    Tensor x({2, 3, 4, 4});
    x[5] = 9.0f;
    const Tensor y = flatten.forward(x);
    EXPECT_EQ(y.shape(), Shape({2, 48}));
    EXPECT_EQ(y[5], 9.0f);
    const Tensor g = flatten.backward(y);
    EXPECT_EQ(g.shape(), x.shape());
}

TEST(Dropout, InferenceIsIdentity) {
    Rng rng(1);
    Dropout dropout(0.5, rng);
    dropout.set_training(false);
    const Tensor x({4, 8}, 3.0f);
    const Tensor y = dropout.forward(x);
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_EQ(y[i], 3.0f);
    }
}

TEST(Dropout, TrainingDropsApproximatelyP) {
    Rng rng(7);
    Dropout dropout(0.3, rng);
    dropout.set_training(true);
    const Tensor x({100, 100}, 1.0f);
    const Tensor y = dropout.forward(x);
    EXPECT_NEAR(zero_fraction(y), 0.3, 0.02);
    // Inverted scaling preserves the mean.
    EXPECT_NEAR(mean(y), 1.0f, 0.02f);
}

TEST(Dropout, BackwardUsesSameMask) {
    Rng rng(7);
    Dropout dropout(0.5, rng);
    dropout.set_training(true);
    const Tensor x({1, 64}, 1.0f);
    const Tensor y = dropout.forward(x);
    const Tensor g = dropout.backward(Tensor::ones({1, 64}));
    for (std::int64_t i = 0; i < y.numel(); ++i) {
        EXPECT_EQ(y[i] == 0.0f, g[i] == 0.0f);
    }
}

TEST(Dropout, RejectsBadProbability) {
    Rng rng(1);
    EXPECT_THROW(Dropout(-0.1, rng), mime::check_error);
    EXPECT_THROW(Dropout(1.0, rng), mime::check_error);
}

TEST(MaxPool, ForwardPicksWindowMax) {
    MaxPool2d pool(2, 2);
    const Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
    const Tensor y = pool.forward(x);
    EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
    EXPECT_EQ(y[0], 5.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
    MaxPool2d pool(2, 2);
    const Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
    pool.forward(x);
    const Tensor g = pool.backward(Tensor::full({1, 1, 1, 1}, 7.0f));
    EXPECT_EQ(g[0], 0.0f);
    EXPECT_EQ(g[1], 7.0f);
    EXPECT_EQ(g[2], 0.0f);
}

TEST(MaxPool, GradCheck) {
    MaxPool2d pool(2, 2);
    Rng rng(11);
    // Distinct values avoid argmax ties that would break the numeric
    // derivative.
    Tensor x({2, 3, 4, 4});
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        x[i] = static_cast<float>(i % 17) * 0.37f +
               static_cast<float>(rng.uniform()) * 0.01f;
    }
    const auto result = check_input_gradient(pool, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(AvgPool, ForwardAverages) {
    AvgPool2d pool(2, 2);
    const Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 3});
    const Tensor y = pool.forward(x);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPool, GradCheck) {
    AvgPool2d pool(2, 2);
    Rng rng(13);
    const Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
    const auto result = check_input_gradient(pool, x, rng);
    EXPECT_TRUE(result.passed) << result.detail;
}

TEST(Pooling, RejectsWindowLargerThanInput) {
    MaxPool2d pool(4, 4);
    const Tensor x({1, 1, 2, 2});
    EXPECT_THROW(pool.forward(x), mime::check_error);
}

TEST(Sequential, ChainsLayersAndParameters) {
    Sequential seq;
    seq.emplace<ReLU>();
    seq.emplace<Flatten>();
    EXPECT_EQ(seq.size(), 2u);
    const Tensor x({2, 1, 2, 2}, std::vector<float>{-1, 2, -3, 4, 5, -6, 7,
                                                    -8});
    const Tensor y = seq.forward(x);
    EXPECT_EQ(y.shape(), Shape({2, 4}));
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 2.0f);
    const Tensor g = seq.backward(y);
    EXPECT_EQ(g.shape(), x.shape());
}

TEST(Sequential, PropagatesTrainingFlag) {
    Sequential seq;
    Rng rng(1);
    auto* dropout = seq.emplace<Dropout>(0.5, rng);
    seq.set_training(false);
    EXPECT_FALSE(dropout->training());
    seq.set_training(true);
    EXPECT_TRUE(dropout->training());
}

}  // namespace
}  // namespace mime::nn
