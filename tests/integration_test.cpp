// End-to-end integration: the full MIME pipeline at miniature scale.
// Parent training → frozen backbone → per-child threshold training →
// multi-task pipelined inference → storage accounting → hardware
// simulation fed with *measured* sparsity.
//
// Everything that depends on training lives in one TEST so the (minutes
// of) training happens once per ctest process.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/multitask.h"
#include "core/sparsity.h"
#include "core/storage.h"
#include "core/trainer.h"
#include "data/task_suite.h"
#include "hw/simulator.h"

namespace mime {
namespace {

core::MimeNetworkConfig mini_config() {
    core::MimeNetworkConfig c;
    c.vgg.input_size = 32;
    c.vgg.width_scale = 0.125;
    c.vgg.num_classes = 20;  // max over parent (20) and children (10)
    c.batchnorm = true;      // CPU-scale training stability
    c.seed = 19;
    return c;
}

TEST(Integration, EndToEndMimePipeline) {
    data::TaskSuiteOptions suite_options;
    suite_options.seed = 19;
    suite_options.train_size = 768;
    suite_options.test_size = 192;
    suite_options.cifar100_classes = 10;
    const data::TaskSuite suite = data::make_task_suite(suite_options);

    core::MimeNetwork network(mini_config());

    core::TrainOptions options;
    options.epochs = 6;
    options.batch_size = 32;
    options.learning_rate = 3e-3f;
    options.pool = &global_pool();

    // ---- 1. Parent task: train backbone in ReLU mode --------------------
    const auto parent_train = suite.family->train_split(suite.parent);
    const auto parent_test = suite.family->test_split(suite.parent);
    const auto parent_history =
        core::train_backbone(network, parent_train, options);
    EXPECT_LT(parent_history.final_epoch().train_loss,
              parent_history.epochs.front().train_loss);
    const double parent_accuracy =
        core::evaluate(network, parent_test, 64, options.pool).accuracy;
    // 20 classes → 5% chance; the parent must learn decisively.
    EXPECT_GT(parent_accuracy, 0.4);

    // ---- 2. Child A: thresholds only, frozen backbone --------------------
    const auto a_train = suite.family->train_split(suite.cifar10_like);
    const auto a_test = suite.family->test_split(suite.cifar10_like);
    const auto backbone_before = network.snapshot_backbone();

    network.reset_thresholds(0.05f);
    core::train_thresholds(network, a_train, options);
    const double child_a_accuracy =
        core::evaluate(network, a_test, 64, options.pool).accuracy;
    // 10 classes → 10% chance; thresholds + head on frozen features must
    // adapt decisively (the paper's core algorithmic claim).
    EXPECT_GT(child_a_accuracy, 0.35);

    // The backbone (minus the classifier head, which adapts per task by
    // design) stayed bit-identical. The snapshot layout is
    // [parameters..., classifier weight, classifier bias, buffers...].
    const auto backbone_after = network.snapshot_backbone();
    ASSERT_EQ(backbone_before.size(), backbone_after.size());
    const std::size_t head_start = network.backbone_parameters().size() - 2;
    for (std::size_t i = 0; i < backbone_before.size(); ++i) {
        if (i == head_start || i == head_start + 1) {
            continue;  // per-task classifier head
        }
        for (std::int64_t j = 0; j < backbone_before[i].numel(); ++j) {
            ASSERT_EQ(backbone_before[i][j], backbone_after[i][j])
                << "frozen backbone parameter " << i << " changed";
        }
    }

    // Trained thresholds induce dynamic neuronal sparsity (Table II's
    // qualitative content).
    const auto a_sparsity =
        core::measure_sparsity(network, a_test, 64, options.pool);
    EXPECT_GT(a_sparsity.overall(), 0.3);
    for (std::size_t i = 0; i < a_sparsity.average_sparsity.size(); ++i) {
        EXPECT_GT(a_sparsity.average_sparsity[i], 0.03)
            << a_sparsity.layer_names[i];
    }
    const core::TaskAdaptation child_a =
        core::capture_adaptation(network, "child-a", 10);

    // ---- 3. Child B (grayscale style): fresh thresholds ------------------
    const auto b_train = suite.family->train_split(suite.fmnist_like);
    const auto b_test = suite.family->test_split(suite.fmnist_like);
    network.reset_thresholds(0.05f);
    core::train_thresholds(network, b_train, options);
    const double child_b_accuracy =
        core::evaluate(network, b_test, 64, options.pool).accuracy;
    EXPECT_GT(child_b_accuracy, 0.35);
    const core::TaskAdaptation child_b =
        core::capture_adaptation(network, "child-b", 10);

    // The two children learned different threshold sets.
    double distance = 0.0;
    for (std::size_t i = 0; i < child_a.thresholds.thresholds.size(); ++i) {
        distance += static_cast<double>(l2_norm(sub(
            child_a.thresholds.thresholds[i], child_b.thresholds.thresholds[i])));
    }
    EXPECT_GT(distance, 1e-3);

    // ---- 4. Pipelined multi-task inference --------------------------------
    core::MultiTaskEngine engine(network);
    engine.register_mime_task(child_a);
    engine.register_mime_task(child_b);
    const auto items = core::interleave_tasks({&a_test, &b_test}, 48);
    const double pipelined_accuracy =
        engine.accuracy(core::MultiTaskEngine::Scheme::mime, items);
    EXPECT_GT(pipelined_accuracy, 0.3);
    // Every switch was a (tiny) threshold swap, never a backbone reload.
    EXPECT_EQ(engine.backbone_switches(), 0);
    EXPECT_EQ(engine.threshold_switches(), 96);

    // Pipelined predictions equal task-by-task predictions: parameter
    // swapping is transparent.
    std::vector<core::PipelinedItem> only_a;
    for (const auto& item : items) {
        if (item.task == 0) {
            only_a.push_back(item);
        }
    }
    const auto mixed = engine.predict(core::MultiTaskEngine::Scheme::mime,
                                      items);
    const auto alone = engine.predict(core::MultiTaskEngine::Scheme::mime,
                                      only_a);
    std::size_t ia = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (items[i].task == 0) {
            ASSERT_EQ(mixed[i], alone[ia++]) << "item " << i;
        }
    }

    // ---- 5. Storage accounting for the trained system ---------------------
    core::StorageModel storage(network.layer_specs(),
                               network.classifier_spec());
    EXPECT_LT(storage.mime_total_bytes(2), storage.conventional_total_bytes(2));
    EXPECT_EQ(child_a.thresholds.parameter_count(),
              arch::total_neurons(network.layer_specs()));

    // ---- 6. Hardware simulation driven by *measured* sparsity -------------
    arch::VggConfig hw_vgg;
    hw_vgg.input_size = 64;
    const auto hw_layers = arch::vgg16_spec(hw_vgg);

    hw::SimulationOptions mime_options;
    mime_options.scheme = hw::Scheme::mime;
    mime_options.batch = {0, 0, 0};
    mime_options.profiles = {
        hw::SparsityProfile("measured", a_sparsity.average_sparsity)};
    hw::SimulationOptions dense_options = mime_options;
    dense_options.scheme = hw::Scheme::baseline_dense;

    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    const auto mime_result = sim.run(hw_layers, mime_options);
    const auto dense_result = sim.run(hw_layers, dense_options);
    EXPECT_LT(mime_result.total_energy.total(),
              dense_result.total_energy.total());
}

TEST(Integration, UntrainedNetworkSitsAtChance) {
    data::TaskSuiteOptions suite_options;
    suite_options.seed = 19;
    suite_options.train_size = 8;
    suite_options.test_size = 128;
    suite_options.cifar100_classes = 10;
    const data::TaskSuite suite = data::make_task_suite(suite_options);

    core::MimeNetwork network(mini_config());
    const auto test = suite.family->test_split(suite.cifar10_like);
    const auto result = core::evaluate(network, test, 64, &global_pool());
    EXPECT_GT(result.accuracy, 0.0);
    EXPECT_LT(result.accuracy, 0.35);
}

}  // namespace
}  // namespace mime
