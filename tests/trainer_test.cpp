// Tests for the training loops: backbone training, threshold training
// with frozen weights (the MIME algorithm), and masked (pruned) training.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/pruning.h"
#include "core/trainer.h"
#include "data/task_suite.h"

namespace mime::core {
namespace {

MimeNetworkConfig tiny_config(std::uint64_t seed = 21) {
    MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.batchnorm = true;  // stabilizes the tiny-scale training tests
    config.seed = seed;
    return config;
}

struct Fixture {
    data::TaskSuite suite;
    data::Dataset train;
    data::Dataset test;

    Fixture() {
        data::TaskSuiteOptions options;
        options.train_size = 256;
        options.test_size = 128;
        options.cifar100_classes = 10;
        suite = data::make_task_suite(options);
        train = suite.family->train_split(suite.cifar10_like);
        test = suite.family->test_split(suite.cifar10_like);
    }
};

TrainOptions fast_options(std::int64_t epochs) {
    TrainOptions options;
    options.epochs = epochs;
    options.batch_size = 32;
    options.learning_rate = 3e-3f;
    options.pool = &mime::global_pool();
    return options;
}

TEST(Trainer, BackboneTrainingReducesLoss) {
    Fixture f;
    MimeNetwork net(tiny_config());
    const auto history = train_backbone(net, f.train, fast_options(3));
    ASSERT_EQ(history.epochs.size(), 3u);
    EXPECT_LT(history.final_epoch().train_loss,
              history.epochs.front().train_loss);
    EXPECT_GT(history.final_epoch().train_accuracy, 0.2);  // ≫ 10% chance
}

TEST(Trainer, EvaluateMatchesChanceForRandomNet) {
    Fixture f;
    MimeNetwork net(tiny_config());
    const EvalResult result = evaluate(net, f.test, 64);
    EXPECT_GT(result.accuracy, 0.0);
    EXPECT_LT(result.accuracy, 0.35);  // untrained ≈ chance on 10 classes
}

TEST(Trainer, ThresholdTrainingKeepsBackboneFrozen) {
    Fixture f;
    MimeNetwork net(tiny_config());
    train_backbone(net, f.train, fast_options(1));

    const auto before = net.snapshot_backbone();
    TrainOptions options = fast_options(1);
    options.train_classifier_with_thresholds = false;
    train_thresholds(net, f.train, options);
    const auto after = net.snapshot_backbone();

    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        for (std::int64_t j = 0; j < before[i].numel(); ++j) {
            ASSERT_EQ(before[i][j], after[i][j])
                << "backbone parameter " << i << " changed";
        }
    }
}

TEST(Trainer, ThresholdTrainingMovesThresholds) {
    Fixture f;
    MimeNetwork net(tiny_config());
    train_backbone(net, f.train, fast_options(1));

    net.reset_thresholds(0.05f);
    const auto before = net.snapshot_thresholds("before");
    train_thresholds(net, f.train, fast_options(1));
    const auto after = net.snapshot_thresholds("after");

    double moved = 0.0;
    for (std::size_t i = 0; i < before.thresholds.size(); ++i) {
        moved += static_cast<double>(
            l2_norm(sub(after.thresholds[i], before.thresholds[i])));
    }
    EXPECT_GT(moved, 0.0);
}

TEST(Trainer, ThresholdFloorEnforced) {
    Fixture f;
    MimeNetwork net(tiny_config());
    TrainOptions options = fast_options(1);
    options.threshold_floor = 0.0f;
    train_thresholds(net, f.train, options);
    for (auto* p : net.threshold_parameters()) {
        EXPECT_GE(min_value(p->value), 0.0f) << p->name;
    }
}

TEST(Trainer, ClassifierTrainsWithThresholdsByDefault) {
    Fixture f;
    MimeNetwork net(tiny_config());
    const auto backbone = net.backbone_parameters();
    const Tensor cls_before = backbone[backbone.size() - 2]->value;
    train_thresholds(net, f.train, fast_options(1));
    const Tensor cls_after = backbone[backbone.size() - 2]->value;
    EXPECT_GT(l2_norm(sub(cls_after, cls_before)), 0.0f);
}

TEST(Trainer, MaskedTrainingPreservesWeightSparsity) {
    Fixture f;
    MimeNetwork net(tiny_config());
    const WeightMaskSet masks =
        prune_at_init(net, f.train.head(32), 0.9, &mime::global_pool());

    TrainOptions options = fast_options(2);
    options.weight_masks = &masks;
    train_backbone(net, f.train, options);

    for (const double s : measured_weight_sparsity(net)) {
        EXPECT_GE(s, 0.88);
    }
}

TEST(Trainer, HistoryRequiresEpochs) {
    TrainHistory empty;
    EXPECT_THROW(empty.final_epoch(), mime::check_error);
    Fixture f;
    MimeNetwork net(tiny_config());
    TrainOptions bad = fast_options(0);
    EXPECT_THROW(train_backbone(net, f.train, bad), mime::check_error);
}

TEST(Trainer, DeterministicGivenSeeds) {
    Fixture f;
    MimeNetwork net_a(tiny_config(33));
    MimeNetwork net_b(tiny_config(33));
    TrainOptions options = fast_options(1);
    options.pool = nullptr;  // single-threaded for bitwise determinism
    const auto ha = train_backbone(net_a, f.train, options);
    const auto hb = train_backbone(net_b, f.train, options);
    EXPECT_DOUBLE_EQ(ha.final_epoch().train_loss,
                     hb.final_epoch().train_loss);
}

}  // namespace
}  // namespace mime::core
