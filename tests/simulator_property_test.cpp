// Parameterized property tests over the simulator: invariants that must
// hold for every (scheme, task count, batch size) combination, not just
// the paper's three-task configuration.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/vgg.h"
#include "common/check.h"
#include "hw/simulator.h"

namespace mime::hw {
namespace {

std::vector<arch::LayerSpec> layers() {
    arch::VggConfig config;
    config.input_size = 64;
    return arch::vgg16_spec(config);
}

std::vector<SparsityProfile> profiles(std::int64_t tasks) {
    std::vector<SparsityProfile> result;
    for (std::int64_t t = 0; t < tasks; ++t) {
        std::string name = "t";
        name += std::to_string(t);
        result.push_back(SparsityProfile::uniform(
            name, 0.4 + 0.05 * static_cast<double>(t)));
    }
    return result;
}

using Config = std::tuple<Scheme, int /*tasks*/, int /*images per task*/>;

class SchemeSweep : public ::testing::TestWithParam<Config> {};

TEST_P(SchemeSweep, WeightVersionAccounting) {
    const auto [scheme, tasks, per_task] = GetParam();
    SimulationOptions options;
    options.scheme = scheme;
    options.profiles = profiles(tasks);
    for (int r = 0; r < per_task; ++r) {
        for (int t = 0; t < tasks; ++t) {
            options.batch.push_back(t);
        }
    }
    options.batch.erase(options.batch.begin());  // start irregular
    options.batch.insert(options.batch.begin(), 0);
    if (scheme == Scheme::pruned) {
        options.weight_sparsity = 0.9;
    }

    const InferenceSimulator sim{SystolicConfig{}};
    const auto result = sim.run(layers(), options);

    std::int64_t weights = 0;
    std::int64_t neurons = 0;
    for (const auto& l : layers()) {
        weights += l.weight_count();
        neurons += l.neuron_count();
    }
    const double expected_versions =
        scheme == Scheme::mime ? 1.0 : static_cast<double>(tasks);
    EXPECT_DOUBLE_EQ(result.total_counts.dram_weight_words,
                     expected_versions * static_cast<double>(weights));
    const double expected_threshold_sets =
        scheme == Scheme::mime ? static_cast<double>(tasks) : 0.0;
    EXPECT_DOUBLE_EQ(result.total_counts.dram_threshold_words,
                     expected_threshold_sets * static_cast<double>(neurons));
}

TEST_P(SchemeSweep, EnergyComponentsNonNegativeAndConsistent) {
    const auto [scheme, tasks, per_task] = GetParam();
    SimulationOptions options;
    options.scheme = scheme;
    options.profiles = profiles(tasks);
    for (int r = 0; r < per_task; ++r) {
        for (int t = 0; t < tasks; ++t) {
            options.batch.push_back(t);
        }
    }
    if (scheme == Scheme::pruned) {
        options.weight_sparsity = 0.9;
    }
    const SystolicConfig config;
    const InferenceSimulator sim{config};
    const auto result = sim.run(layers(), options);

    EnergyBreakdown recomputed;
    for (const auto& l : result.layers) {
        EXPECT_GE(l.energy.e_dram, 0.0);
        EXPECT_GE(l.energy.e_cache, 0.0);
        EXPECT_GE(l.energy.e_reg, 0.0);
        EXPECT_GE(l.energy.e_mac, 0.0);
        // Per-layer energies equal Table IV weights applied to counts.
        const auto direct = energy_from_counts(l.counts, config);
        EXPECT_DOUBLE_EQ(direct.total(), l.energy.total()) << l.name;
        recomputed += l.energy;
    }
    EXPECT_NEAR(recomputed.total(), result.total_energy.total(),
                1e-6 * result.total_energy.total());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeSweep,
    ::testing::Combine(::testing::Values(Scheme::baseline_dense,
                                         Scheme::baseline_sparse, Scheme::mime,
                                         Scheme::pruned),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 3)));

TEST(SimulatorProperty, ComputeScalesLinearlyWithBatch) {
    SimulationOptions one;
    one.scheme = Scheme::mime;
    one.batch = {0};
    one.profiles = profiles(1);
    SimulationOptions three = one;
    three.batch = {0, 0, 0};

    const InferenceSimulator sim{SystolicConfig{}};
    const auto r1 = sim.run(layers(), one);
    const auto r3 = sim.run(layers(), three);
    EXPECT_DOUBLE_EQ(r3.total_counts.macs, 3.0 * r1.total_counts.macs);
    EXPECT_DOUBLE_EQ(r3.total_counts.reg_words,
                     3.0 * r1.total_counts.reg_words);
    // Weights and thresholds are batch-invariant for a single task.
    EXPECT_DOUBLE_EQ(r3.total_counts.dram_weight_words,
                     r1.total_counts.dram_weight_words);
    EXPECT_DOUBLE_EQ(r3.total_counts.dram_threshold_words,
                     r1.total_counts.dram_threshold_words);
}

TEST(SimulatorProperty, SingleTaskPipelinedEqualsSingular) {
    // A "pipelined" batch whose items all share one task is exactly the
    // singular mode.
    SimulationOptions a;
    a.scheme = Scheme::baseline_sparse;
    a.batch = {0, 0, 0};
    a.profiles = profiles(1);
    SimulationOptions b = a;
    b.preserve_arrival_order = true;  // order irrelevant with one task

    const InferenceSimulator sim{SystolicConfig{}};
    EXPECT_DOUBLE_EQ(sim.run(layers(), a).total_energy.total(),
                     sim.run(layers(), b).total_energy.total());
}

TEST(SimulatorProperty, MoreTasksNeverCheaperConventional) {
    const InferenceSimulator sim{SystolicConfig{}};
    double prev = 0.0;
    for (int tasks = 1; tasks <= 4; ++tasks) {
        SimulationOptions options;
        options.scheme = Scheme::baseline_sparse;
        options.profiles = profiles(tasks);
        for (int t = 0; t < tasks; ++t) {
            options.batch.push_back(t);
        }
        // Pad to a fixed batch size so compute is comparable.
        while (options.batch.size() < 4) {
            options.batch.push_back(0);
        }
        const double energy = sim.run(layers(), options).total_energy.total();
        EXPECT_GE(energy, prev) << tasks << " tasks";
        prev = energy;
    }
}

TEST(SimulatorProperty, MimeThresholdCostGrowsLinearly) {
    const InferenceSimulator sim{SystolicConfig{}};
    std::vector<double> threshold_words;
    for (int tasks = 1; tasks <= 3; ++tasks) {
        SimulationOptions options;
        options.scheme = Scheme::mime;
        options.profiles = profiles(tasks);
        for (int t = 0; t < tasks; ++t) {
            options.batch.push_back(t);
        }
        threshold_words.push_back(
            sim.run(layers(), options).total_counts.dram_threshold_words);
    }
    EXPECT_DOUBLE_EQ(threshold_words[1], 2.0 * threshold_words[0]);
    EXPECT_DOUBLE_EQ(threshold_words[2], 3.0 * threshold_words[0]);
}

TEST(SimulatorProperty, CyclesPositiveAndMemoryBoundSane) {
    const InferenceSimulator sim{SystolicConfig{}};
    const auto result =
        sim.run(layers(), pipelined_options(Scheme::baseline_dense));
    for (const auto& l : result.layers) {
        EXPECT_GT(l.cycles, 0.0) << l.name;
        EXPECT_GE(l.cycles, l.compute_cycles) << l.name;
        EXPECT_GE(l.cycles, l.memory_cycles) << l.name;
        EXPECT_LE(l.cycles, l.compute_cycles + l.memory_cycles) << l.name;
    }
}

}  // namespace
}  // namespace mime::hw
