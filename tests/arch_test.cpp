// Tests for the VGG16 architecture description.
#include <gtest/gtest.h>

#include "arch/vgg.h"
#include "common/check.h"

namespace mime::arch {
namespace {

TEST(LayerSpec, CountsForKnownConv) {
    LayerSpec spec;
    spec.name = "conv5";
    spec.in_channels = 128;
    spec.out_channels = 256;
    spec.kernel = 3;
    spec.padding = 1;
    spec.in_height = 16;
    spec.in_width = 16;
    spec.validate();
    EXPECT_EQ(spec.out_height(), 16);
    EXPECT_EQ(spec.weight_count(), 256 * 128 * 9);
    EXPECT_EQ(spec.neuron_count(), 256 * 16 * 16);
    EXPECT_EQ(spec.mac_count(), spec.neuron_count() * 128 * 9);
    EXPECT_EQ(spec.macs_per_neuron(), 128 * 9);
}

TEST(LayerSpec, FcConstraints) {
    LayerSpec fc;
    fc.name = "conv14";
    fc.kind = LayerKind::fc;
    fc.in_channels = 512;
    fc.out_channels = 512;
    fc.validate();
    EXPECT_EQ(fc.neuron_count(), 512);
    EXPECT_EQ(fc.weight_count(), 512 * 512);

    fc.kernel = 3;
    EXPECT_THROW(fc.validate(), mime::check_error);
}

TEST(Vgg16, FifteenThresholdLayers) {
    const auto layers = vgg16_spec();
    ASSERT_EQ(layers.size(), 15u);
    EXPECT_EQ(layers[0].name, "conv1");
    EXPECT_EQ(layers[12].name, "conv13");
    EXPECT_EQ(layers[13].name, "conv14");
    EXPECT_EQ(layers[14].name, "conv15");
    EXPECT_EQ(layers[13].kind, LayerKind::fc);
    EXPECT_EQ(layers[14].kind, LayerKind::fc);
}

TEST(Vgg16, ClassicChannelProgression) {
    const auto layers = vgg16_spec();
    EXPECT_EQ(layers[0].in_channels, 3);
    EXPECT_EQ(layers[0].out_channels, 64);
    EXPECT_EQ(layers[2].out_channels, 128);
    EXPECT_EQ(layers[4].out_channels, 256);
    EXPECT_EQ(layers[7].out_channels, 512);
    EXPECT_EQ(layers[12].out_channels, 512);
}

TEST(Vgg16, PoolPositions) {
    const auto layers = vgg16_spec();
    // Pools follow conv2, conv4, conv7, conv10, conv13 (2-2-3-3-3).
    const bool expected[13] = {false, true, false, true, false, false, true,
                               false, false, true, false, false, true};
    for (int i = 0; i < 13; ++i) {
        EXPECT_EQ(layers[static_cast<std::size_t>(i)].pool_after, expected[i])
            << "conv" << (i + 1);
    }
}

TEST(Vgg16, SpatialShrinksWithPools) {
    VggConfig config;
    config.input_size = 64;
    const auto layers = vgg16_spec(config);
    EXPECT_EQ(layers[0].in_height, 64);
    EXPECT_EQ(layers[2].in_height, 32);   // after pool 1
    EXPECT_EQ(layers[4].in_height, 16);   // after pool 2
    EXPECT_EQ(layers[7].in_height, 8);    // after pool 3
    EXPECT_EQ(layers[10].in_height, 4);   // after pool 4
    // FC input = 512 * (64/32)^2.
    EXPECT_EQ(layers[13].in_channels, 512 * 2 * 2);
}

TEST(Vgg16, FullSizeParameterCount) {
    // The 13 conv layers of VGG16 hold ~14.71M weights.
    const auto layers = vgg16_spec();
    std::int64_t conv_weights = 0;
    for (const auto& l : layers) {
        if (l.kind == LayerKind::conv) {
            conv_weights += l.weight_count();
        }
    }
    EXPECT_EQ(conv_weights, 14710464);
}

TEST(Vgg16, ThresholdCrossoverAtEvaluationGeometry) {
    // At the hardware-evaluation geometry (input 64), thresholds
    // outnumber weights in conv2 while weights dominate from conv5 on —
    // the crossover driving the paper's Fig 8 discussion.
    VggConfig config;
    config.input_size = 64;
    const auto layers = vgg16_spec(config);
    EXPECT_GT(layers[1].neuron_count(), layers[1].weight_count());   // conv2
    EXPECT_GT(layers[4].weight_count(), layers[4].neuron_count());   // conv5
    EXPECT_GT(layers[7].weight_count(), layers[7].neuron_count());   // conv8
    EXPECT_GT(layers[12].weight_count(), layers[12].neuron_count()); // conv13
}

TEST(Vgg16, WidthScaleShrinksChannels) {
    VggConfig config;
    config.width_scale = 0.125;
    const auto layers = vgg16_spec(config);
    EXPECT_EQ(layers[0].out_channels, 8);    // 64/8
    EXPECT_EQ(layers[4].out_channels, 32);   // 256/8
    EXPECT_EQ(layers[12].out_channels, 64);  // 512/8
}

TEST(Vgg16, ScaleChannelsFloorsAtFour) {
    EXPECT_EQ(scale_channels(64, 0.01), 4);
    EXPECT_EQ(scale_channels(64, 1.0), 64);
    EXPECT_EQ(scale_channels(100, 0.5), 50);
    EXPECT_THROW(scale_channels(64, 0.0), mime::check_error);
    EXPECT_THROW(scale_channels(64, 1.5), mime::check_error);
}

TEST(Vgg16, ClassifierMatchesLastFc) {
    VggConfig config;
    config.num_classes = 100;
    const auto cls = vgg16_classifier(config);
    const auto layers = vgg16_spec(config);
    EXPECT_EQ(cls.in_channels, layers.back().out_channels);
    EXPECT_EQ(cls.out_channels, 100);
}

TEST(Vgg16, RejectsBadInputSize) {
    VggConfig config;
    config.input_size = 48;  // not divisible by 32
    EXPECT_THROW(vgg16_spec(config), mime::check_error);
    config.input_size = 16;  // too small
    EXPECT_THROW(vgg16_spec(config), mime::check_error);
}

TEST(Totals, SumAcrossLayers) {
    const auto layers = vgg16_spec();
    EXPECT_EQ(total_weights(layers),
              [&] {
                  std::int64_t n = 0;
                  for (const auto& l : layers) {
                      n += l.weight_count();
                  }
                  return n;
              }());
    EXPECT_GT(total_neurons(layers), 0);
    EXPECT_GT(total_macs(layers), total_weights(layers));
}

}  // namespace
}  // namespace mime::arch
