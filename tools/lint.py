#!/usr/bin/env python3
"""Repo-invariant linter, run as a CI gate (and locally: python3 tools/lint.py).

Checks structural invariants the compiler cannot:

  1. No raw synchronization primitives outside src/common/sync.h.
     Every mutex must come through the capability-annotated wrappers so
     Clang's thread-safety analysis sees it; a raw std::mutex is
     invisible to the analysis and silently un-checked.

  2. No <iostream> in src/ headers. Including it injects the static
     ios_base::Init constructor into every translation unit and drags
     stream machinery into library headers; libraries report through
     return values and exceptions, binaries own stdout.

  3. MIME_NO_THREAD_SAFETY_ANALYSIS is budgeted: at most 3 uses
     tree-wide (excluding its definition in sync.h), and every use must
     carry an adjacent justification comment. The escape hatch exists
     for patterns the analysis genuinely cannot express, not for
     silencing findings.

Exit status 0 when clean, 1 with findings (one per line, grep-style).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "bench", "examples")
SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}
SYNC_HEADER = REPO / "src" / "common" / "sync.h"

RAW_SYNC_PATTERN = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(?:_any)?)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
)
ESCAPE_HATCH = "MIME_NO_THREAD_SAFETY_ANALYSIS"
ESCAPE_BUDGET = 3


def source_files() -> list[Path]:
    files: list[Path] = []
    for top in SCAN_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        files.extend(
            p for p in sorted(root.rglob("*")) if p.suffix in SOURCE_SUFFIXES
        )
    return files


def strip_comments(line: str) -> str:
    """Drop // comments so prose about std::mutex does not trip rule 1.

    (Block comments spanning lines are rare in this tree and never
    mention primitive spellings mid-block; line-level stripping keeps
    the linter trivially auditable.)
    """
    return line.split("//", 1)[0]


def check_raw_sync(path: Path, lines: list[str], findings: list[str]) -> None:
    if path == SYNC_HEADER:
        return
    for number, line in enumerate(lines, start=1):
        match = RAW_SYNC_PATTERN.search(strip_comments(line))
        if match:
            findings.append(
                f"{path.relative_to(REPO)}:{number}: raw '{match.group(0)}' "
                f"outside src/common/sync.h — use Mutex/MutexLock/CondVar "
                f"so the thread-safety analysis can see it"
            )


def check_iostream_in_headers(
    path: Path, lines: list[str], findings: list[str]
) -> None:
    if path.suffix not in {".h", ".hpp"}:
        return
    if (REPO / "src") not in path.parents:
        return
    for number, line in enumerate(lines, start=1):
        if re.search(r"#\s*include\s*<iostream>", strip_comments(line)):
            findings.append(
                f"{path.relative_to(REPO)}:{number}: <iostream> in a src/ "
                f"header — headers must not pull in stream machinery"
            )


def has_adjacent_comment(lines: list[str], index: int) -> bool:
    """A justification is a comment on the use's line or either of the
    two lines above it (attribute lines often sit between the comment
    and the declaration)."""
    if "//" in lines[index]:
        return True
    for back in (1, 2):
        if index - back >= 0 and lines[index - back].lstrip().startswith("//"):
            return True
    return False


def check_escape_budget(files: list[Path], findings: list[str]) -> None:
    uses: list[tuple[Path, int]] = []
    for path in files:
        lines = path.read_text(encoding="utf-8").splitlines()
        for number, line in enumerate(lines, start=1):
            if ESCAPE_HATCH not in line:
                continue
            if path == SYNC_HEADER:
                continue  # the definition site
            uses.append((path, number))
            if not has_adjacent_comment(lines, number - 1):
                findings.append(
                    f"{path.relative_to(REPO)}:{number}: {ESCAPE_HATCH} "
                    f"without an adjacent justification comment"
                )
    if len(uses) > ESCAPE_BUDGET:
        where = ", ".join(
            f"{p.relative_to(REPO)}:{n}" for p, n in uses
        )
        findings.append(
            f"{ESCAPE_HATCH} used {len(uses)} times (budget "
            f"{ESCAPE_BUDGET}): {where}"
        )


def main() -> int:
    files = source_files()
    findings: list[str] = []
    for path in files:
        lines = path.read_text(encoding="utf-8").splitlines()
        check_raw_sync(path, lines, findings)
        check_iostream_in_headers(path, lines, findings)
    check_escape_budget(files, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
