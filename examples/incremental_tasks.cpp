// Incremental task onboarding: what happens to the parameter budget as a
// deployed system keeps gaining tasks (the paper's Fig 1 story, run
// functionally).
//
// Starting from one trained parent backbone, the example adds synthetic
// child tasks one by one: each new task trains only thresholds (+ head),
// is registered with the multi-task engine, and the cumulative DRAM
// budget of MIME vs conventional fine-tuning is printed after each step.
// All earlier tasks are re-validated after every onboarding to show that
// MIME's adaptations never interfere (the frozen backbone guarantees it).
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/multitask.h"
#include "core/storage.h"
#include "core/trainer.h"
#include "data/task_suite.h"

using namespace mime;

int main() {
    const std::int64_t kChildCount = 4;

    data::SyntheticTaskFamily family(/*seed=*/23);
    std::vector<std::int64_t> child_tasks;
    for (std::int64_t i = 0; i < kChildCount; ++i) {
        data::TaskSpec spec;
        spec.name = "field-task-" + std::to_string(i + 1);
        spec.num_classes = 10;
        spec.parent_affinity = 0.5 + 0.1 * static_cast<double>(i % 3);
        spec.style = (i % 2 == 0) ? data::ImageStyle::rgb
                                  : data::ImageStyle::grayscale;
        spec.train_size = 448;
        spec.test_size = 96;
        child_tasks.push_back(family.add_task(spec));
    }

    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.125;
    config.vgg.num_classes = 20;
    config.batchnorm = true;
    core::MimeNetwork network(config);

    core::TrainOptions options;
    options.epochs = 4;
    options.batch_size = 32;
    options.learning_rate = 3e-3f;
    options.pool = &global_pool();

    std::printf("== incremental task onboarding ==\n\n");
    std::printf("training the parent backbone once ...\n\n");
    core::train_backbone(network, family.train_split(0), options);

    core::MultiTaskEngine engine(network);
    core::StorageModel storage(network.layer_specs(),
                               network.classifier_spec());
    std::vector<data::Dataset> test_sets;

    Table table({"tasks deployed", "new-task acc", "all-task acc (recheck)",
                 "MIME DRAM", "conventional DRAM", "savings"});

    for (std::int64_t i = 0; i < kChildCount; ++i) {
        const std::int64_t task = child_tasks[static_cast<std::size_t>(i)];
        std::printf("onboarding %s ...\n",
                    family.task(task).name.c_str());
        network.reset_thresholds(0.05f);
        core::train_thresholds(network, family.train_split(task), options);
        engine.register_mime_task(core::capture_adaptation(
            network, family.task(task).name, family.task(task).num_classes));
        test_sets.push_back(family.test_split(task));

        const auto new_eval =
            core::evaluate(network, test_sets.back(), 64, options.pool);

        // Re-validate every deployed task through the engine: earlier
        // adaptations must be untouched by the new one.
        std::vector<const data::Dataset*> sets;
        for (const auto& ds : test_sets) {
            sets.push_back(&ds);
        }
        const auto queue = core::interleave_tasks(sets, 32);
        const double all_acc =
            engine.accuracy(core::MultiTaskEngine::Scheme::mime, queue);

        const std::int64_t n = i + 1;
        table.add_row({std::to_string(n), Table::num(new_eval.accuracy, 3),
                       Table::num(all_acc, 3),
                       Table::bytes(static_cast<double>(
                           storage.mime_total_bytes(n))),
                       Table::bytes(static_cast<double>(
                           storage.conventional_total_bytes(n))),
                       Table::ratio(storage.savings(n))});
    }

    std::printf("\n");
    table.print();
    std::printf(
        "\neach onboarding added %s of thresholds instead of %s of weights.\n",
        Table::bytes(static_cast<double>(storage.threshold_bytes())).c_str(),
        Table::bytes(static_cast<double>(storage.weight_bytes())).c_str());
    return 0;
}
