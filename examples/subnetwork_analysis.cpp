// Subnetwork analysis: the paper's Fig 2(b) picture, quantified.
//
// MIME activates a different sub-network of the shared backbone per
// (task, input). This example calibrates two different child tasks'
// thresholds on the same backbone, then measures per layer
//   * each task's neuron firing rate,
//   * the Jaccard overlap between the two tasks' active sets on
//     identical probe inputs,
// plus the threshold distributions themselves. Calibration (rather than
// full training) keeps the example fast; see bench/ablation_threshold_design
// for the trained-vs-calibrated comparison.
#include <cstdio>

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/calibration.h"
#include "core/threshold_analysis.h"
#include "core/trainer.h"
#include "data/task_suite.h"

using namespace mime;

int main() {
    data::TaskSuiteOptions suite_options;
    suite_options.train_size = 384;
    suite_options.test_size = 96;
    suite_options.cifar100_classes = 10;
    const data::TaskSuite suite = data::make_task_suite(suite_options);

    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.125;
    config.vgg.num_classes = 20;
    config.batchnorm = true;
    core::MimeNetwork network(config);

    core::TrainOptions options;
    options.epochs = 4;
    options.batch_size = 32;
    options.learning_rate = 3e-3f;
    options.pool = &global_pool();

    std::printf("training the shared parent backbone ...\n");
    core::train_backbone(network, suite.family->train_split(suite.parent),
                         options);

    // Per-task thresholds from each task's own calibration data.
    core::CalibrationOptions calibration;
    calibration.target_sparsity = 0.6;
    std::printf("calibrating thresholds for two child tasks ...\n\n");
    core::calibrate_thresholds(
        network,
        suite.family->train_split(suite.cifar10_like).head(96), calibration);
    const core::ThresholdSet task_a = network.snapshot_thresholds("rgb");
    core::calibrate_thresholds(
        network, suite.family->train_split(suite.fmnist_like).head(96),
        calibration);
    const core::ThresholdSet task_b = network.snapshot_thresholds("gray");

    // Threshold distributions.
    Table stats_table({"layer", "thresholds", "mean(rgb)", "std(rgb)",
                       "mean(gray)", "std(gray)"});
    const auto stats_a = core::threshold_statistics(task_a,
                                                    network.layer_specs());
    const auto stats_b = core::threshold_statistics(task_b,
                                                    network.layer_specs());
    for (std::size_t i = 0; i < stats_a.size(); ++i) {
        stats_table.add_row({stats_a[i].layer,
                             std::to_string(stats_a[i].count),
                             Table::num(stats_a[i].mean, 3),
                             Table::num(stats_a[i].stddev, 3),
                             Table::num(stats_b[i].mean, 3),
                             Table::num(stats_b[i].stddev, 3)});
    }
    std::printf("per-task threshold distributions:\n");
    stats_table.print();

    // Mask overlap on a shared probe batch.
    const data::Batch probe =
        suite.family->test_split(suite.cifar10_like).head(32);
    const auto overlaps = core::mask_overlap(network, task_a, task_b, probe);

    Table overlap_table(
        {"layer", "active(rgb)", "active(gray)", "Jaccard overlap"});
    for (const auto& o : overlaps) {
        overlap_table.add_row({o.layer, Table::num(o.active_fraction_a, 3),
                               Table::num(o.active_fraction_b, 3),
                               Table::num(o.jaccard, 3)});
    }
    std::printf("\nsubnetwork overlap between the two tasks (same inputs):\n");
    overlap_table.print();
    std::printf(
        "\nmean Jaccard overlap: %.3f — the two tasks run distinct but\n"
        "substantially shared sub-networks of one backbone, which is what\n"
        "lets MIME reuse W_parent while still specializing per task.\n",
        core::mean_overlap(overlaps));
    return 0;
}
