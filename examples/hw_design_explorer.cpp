// Hardware design-space exploration (extends the paper's Fig 9 ablation).
//
// Sweeps PE-array sizes and on-chip cache budgets for MIME in Pipelined
// task mode and prints the energy / throughput frontier, under both the
// fixed natural mapping (as a hardware ablation holds the mapping
// constant) and the per-layer tile-shape optimizer.
#include <cstdio>
#include <vector>

#include "arch/vgg.h"
#include "common/table.h"
#include "hw/simulator.h"

using namespace mime;

namespace {

struct DesignPoint {
    std::int64_t pe;
    std::int64_t cache_kb;
};

}  // namespace

int main() {
    arch::VggConfig vgg;
    vgg.input_size = 64;
    const auto layers = arch::vgg16_spec(vgg);

    const std::vector<DesignPoint> designs = {
        {256, 156},  {512, 156},  {1024, 156}, {2048, 156}, {4096, 156},
        {1024, 64},  {1024, 96},  {1024, 128}, {1024, 256}, {1024, 512},
    };

    for (const bool optimize : {false, true}) {
        std::printf("\n== %s ==\n",
                    optimize ? "per-layer tile-shape optimizer"
                             : "fixed natural mapping (ablation view)");
        Table table({"PEs", "cache", "E_DRAM", "E_cache", "E_reg+MAC",
                     "total energy", "cycles", "vs Table-IV design"});

        // Reference: the paper's Table IV design under the same mapping.
        hw::SystolicConfig reference;
        auto options = hw::pipelined_options(hw::Scheme::mime);
        options.optimize_tiling = optimize;
        const auto base =
            hw::InferenceSimulator{reference}.run(layers, options);

        for (const DesignPoint& d : designs) {
            hw::SystolicConfig config;
            config.pe_array_size = d.pe;
            config.total_cache_bytes = d.cache_kb * 1024;
            const auto result =
                hw::InferenceSimulator{config}.run(layers, options);
            table.add_row(
                {std::to_string(d.pe), std::to_string(d.cache_kb) + " KB",
                 Table::num(result.total_energy.e_dram, 0),
                 Table::num(result.total_energy.e_cache, 0),
                 Table::num(result.total_energy.e_reg +
                                result.total_energy.e_mac,
                            0),
                 Table::num(result.total_energy.total(), 0),
                 Table::num(result.total_cycles, 0),
                 Table::ratio(result.total_energy.total() /
                              base.total_energy.total())});
        }
        table.print();
    }

    std::printf(
        "\nreading the frontier: energy is far more sensitive to the PE\n"
        "array (parameter re-fetch per tile) than to the cache budget —\n"
        "the paper's design recommendation. The optimizer rows show how\n"
        "much of the penalty a smarter compiler mapping can recover.\n");
    return 0;
}
