// Tour of the unified serving client API: persist three child-task
// adaptations to an AdaptationStore, stand up an InferenceServer that
// hydrates its threshold cache from that store, then drive it purely
// through the InferenceService surface — the SubmitOptions envelope
// (deadline, priority, delivery mode), Outcome status codes instead of
// exceptions, callback delivery, and best-effort cancellation — and
// print the serving stats table.
//
// Usage: serve_demo [store_dir]   (default ./serve_demo_store)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "core/adaptation_store.h"
#include "core/multitask.h"
#include "serve/inference_server.h"
#include "serve/service.h"

using namespace mime;

int main(int argc, char** argv) {
    const std::string store_dir =
        argc > 1 ? argv[1] : "./serve_demo_store";

    // One parent network; three child tasks that differ only in their
    // threshold sets (the paper's W_parent + T_child deployment).
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 11;
    core::MimeNetwork network(config);
    network.set_training(false);
    network.set_mode(core::ActivationMode::threshold);

    core::AdaptationStore store(store_dir);
    const std::vector<std::pair<std::string, float>> tasks = {
        {"cifar10-like", 0.05f},
        {"cifar100-like", 0.20f},
        {"fmnist-like", 0.45f}};
    for (const auto& [name, threshold] : tasks) {
        network.reset_thresholds(threshold);
        store.save_task(core::capture_adaptation(network, name, 10));
    }
    std::printf("stored %zu adaptations (%lld bytes) under %s\n",
                tasks.size(),
                static_cast<long long>(store.adaptation_bytes()),
                store_dir.c_str());

    serve::ServerConfig server_config;
    server_config.batcher.policy = serve::BatchingPolicy::task_grouped;
    server_config.batcher.max_batch_size = 4;
    server_config.batcher.max_wait = std::chrono::microseconds(1000);
    server_config.cache_capacity = 2;  // one task will thrash: watch
                                       // the eviction counter
    serve::InferenceServer server(network, store.task_loader(),
                                  server_config);
    // Everything below goes through the backend-agnostic interface —
    // swapping in a ServerPool would not change a line.
    serve::InferenceService& service = server;

    // Three client threads, each hammering its own task with interactive
    // priority and a generous deadline; outcomes are checked, not
    // caught.
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        clients.emplace_back([&, t] {
            Rng rng(static_cast<std::uint64_t>(40 + t));
            for (int i = 0; i < 12; ++i) {
                serve::SubmitOptions options;
                options.priority = serve::Priority::interactive;
                options.deadline = std::chrono::milliseconds(500);
                const serve::Outcome<serve::InferenceResult> outcome =
                    service.run(tasks[t].first,
                                Tensor::randn({3, 32, 32}, rng),
                                std::move(options));
                if (!outcome.ok()) {
                    std::printf("%s: request failed: %s (%s)\n",
                                tasks[t].first.c_str(),
                                serve::to_string(outcome.status()),
                                outcome.message().c_str());
                    continue;
                }
                if (i == 0) {
                    const serve::InferenceResult& result = outcome.value();
                    std::printf(
                        "%s: first result class=%lld latency=%.0f us "
                        "(batch of %lld)\n",
                        result.task.c_str(),
                        static_cast<long long>(result.predicted_class),
                        result.latency_us,
                        static_cast<long long>(result.batch_size));
                }
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }

    // Callback delivery: the outcome arrives on the dispatch side, no
    // future to hold.
    std::promise<std::string> delivered;
    serve::SubmitOptions callback_options;
    callback_options.priority = serve::Priority::batch;
    callback_options.on_result =
        [&delivered](serve::Outcome<serve::InferenceResult> outcome) {
            delivered.set_value(
                outcome.ok() ? "class " + std::to_string(
                                              outcome.value().predicted_class)
                             : std::string(serve::to_string(outcome.status())));
        };
    service.submit("cifar10-like", Tensor({3, 32, 32}, 0.1f),
                   std::move(callback_options));
    std::printf("callback delivery (batch priority): %s\n",
                delivered.get_future().get().c_str());

    // Structured failure statuses instead of exceptions: an
    // already-expired deadline, a cancelled ticket, a bad envelope.
    serve::SubmitOptions expired;
    expired.deadline = std::chrono::microseconds(1);
    std::printf("expired deadline    -> %s\n",
                serve::to_string(
                    service.run("cifar10-like", Tensor({3, 32, 32}, 0.2f),
                                std::move(expired))
                        .status()));
    serve::RequestTicket doomed =
        service.submit("fmnist-like", Tensor({3, 32, 32}, 0.3f), {});
    std::printf("cancel() won: %s    -> %s\n",
                doomed.cancel() ? "yes" : "no",
                serve::to_string(doomed.wait().status()));
    std::printf("mis-shaped request  -> %s\n",
                serve::to_string(
                    service.run("cifar10-like", Tensor({1, 28, 28})).status()));

    service.drain();
    service.stop();
    std::printf("submit after stop   -> %s\n",
                serve::to_string(
                    service.run("cifar10-like", Tensor({3, 32, 32}))
                        .status()));

    std::printf("\n%s\n", server.stats().to_table_string().c_str());
    std::filesystem::remove_all(store_dir);
    return 0;
}
