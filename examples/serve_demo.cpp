// Minimal tour of the serving runtime: persist three child-task
// adaptations to an AdaptationStore, stand up an InferenceServer that
// hydrates its threshold cache from that store, serve a small mixed-task
// stream from several client threads, and print the serving stats table.
//
// Usage: serve_demo [store_dir]   (default ./serve_demo_store)
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/adaptation_store.h"
#include "core/multitask.h"
#include "serve/inference_server.h"

using namespace mime;

int main(int argc, char** argv) {
    const std::string store_dir =
        argc > 1 ? argv[1] : "./serve_demo_store";

    // One parent network; three child tasks that differ only in their
    // threshold sets (the paper's W_parent + T_child deployment).
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 11;
    core::MimeNetwork network(config);
    network.set_training(false);
    network.set_mode(core::ActivationMode::threshold);

    core::AdaptationStore store(store_dir);
    const std::vector<std::pair<std::string, float>> tasks = {
        {"cifar10-like", 0.05f},
        {"cifar100-like", 0.20f},
        {"fmnist-like", 0.45f}};
    for (const auto& [name, threshold] : tasks) {
        network.reset_thresholds(threshold);
        store.save_task(core::capture_adaptation(network, name, 10));
    }
    std::printf("stored %zu adaptations (%lld bytes) under %s\n",
                tasks.size(),
                static_cast<long long>(store.adaptation_bytes()),
                store_dir.c_str());

    serve::ServerConfig server_config;
    server_config.batcher.policy = serve::BatchingPolicy::task_grouped;
    server_config.batcher.max_batch_size = 4;
    server_config.batcher.max_wait = std::chrono::microseconds(1000);
    server_config.cache_capacity = 2;  // one task will thrash: watch
                                       // the eviction counter
    serve::InferenceServer server(network, store.task_loader(),
                                  server_config);

    // Three client threads, each hammering its own task.
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        clients.emplace_back([&, t] {
            Rng rng(static_cast<std::uint64_t>(40 + t));
            for (int i = 0; i < 12; ++i) {
                const serve::InferenceResult result = server.submit(
                    tasks[t].first, Tensor::randn({3, 32, 32}, rng));
                if (i == 0) {
                    std::printf(
                        "%s: first result class=%lld latency=%.0f us "
                        "(batch of %lld)\n",
                        result.task.c_str(),
                        static_cast<long long>(result.predicted_class),
                        result.latency_us,
                        static_cast<long long>(result.batch_size));
                }
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    server.stop();

    std::printf("\n%s\n", server.stats().to_table_string().c_str());
    std::filesystem::remove_all(store_dir);
    return 0;
}
