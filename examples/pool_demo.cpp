// Sharded server-pool tour: one frozen backbone, many replicas, one
// client API.
//
// Builds a tiny MimeNetwork, captures six child-task adaptations into an
// on-disk AdaptationStore, then serves a mixed-priority multi-client
// stream through a 3-replica ServerPool with task_affinity routing —
// driven entirely through the backend-agnostic InferenceService surface.
// Admission runs in shed mode: overload arrives as a
// ServeStatus::overloaded outcome the clients retry, never an exception.
// Along the way it prints the memory story: N replicas share one
// W_parent (the clones alias the prototype's storage), so replication
// costs only per-replica T_child slots — the paper's DRAM argument
// applied to scale-out.
//
// Run from the build directory:  ./examples/pool_demo
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "core/adaptation_store.h"
#include "core/mime_network.h"
#include "core/multitask.h"
#include "serve/server_pool.h"
#include "serve/service.h"
#include "tensor/tensor.h"

using namespace mime;

int main() {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 11;
    core::MimeNetwork network(config);
    network.set_training(false);
    network.set_mode(core::ActivationMode::threshold);

    // Capture six child tasks (in a real deployment these come from
    // threshold training; here distinct constants keep the demo fast).
    const std::string dir = "pool_demo_store";
    std::filesystem::remove_all(dir);
    core::AdaptationStore store(dir);
    constexpr int kTasks = 6;
    for (int t = 0; t < kTasks; ++t) {
        network.reset_thresholds(0.05f + 0.1f * static_cast<float>(t));
        store.save_task(core::capture_adaptation(
            network, "task" + std::to_string(t), 10));
    }

    serve::PoolConfig pool_config;
    pool_config.replica_count = 3;
    pool_config.routing = serve::RoutingPolicy::task_affinity;
    pool_config.admission = serve::AdmissionMode::shed;
    pool_config.max_pending = 16;
    pool_config.server.cache_capacity = 3;
    pool_config.server.worker_threads = 1;
    pool_config.server.batcher.max_wait = std::chrono::microseconds(500);
    serve::ServerPool pool(network, store.task_loader(), pool_config);
    // The clients only ever see the unified interface; a lone
    // InferenceServer would serve them with the same code.
    serve::InferenceService& service = pool;

    const double backbone_mib =
        static_cast<double>(network.shared_backbone_bytes()) / (1 << 20);
    std::printf("pool: %zu replicas, one shared backbone (%.2f MiB; "
                "naive replication would hold %.2f MiB)\n",
                pool.replica_count(), backbone_mib,
                backbone_mib * static_cast<double>(pool.replica_count()));

    // Three clients, each favouring a different subset of tasks. Every
    // third request is background batch traffic; overloaded outcomes
    // are retried after a short backoff.
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&service, c] {
            Rng rng(static_cast<std::uint64_t>(100 + c));
            int shed_retries = 0;
            for (int i = 0; i < 30; ++i) {
                const int task = (c * 2 + (i % 3 == 0 ? i % kTasks : i % 2))
                                 % kTasks;
                serve::SubmitOptions options;
                options.priority = i % 3 == 0 ? serve::Priority::batch
                                              : serve::Priority::interactive;
                options.deadline = std::chrono::milliseconds(800);
                for (;;) {
                    serve::SubmitOptions attempt = options;
                    const serve::Outcome<serve::InferenceResult> outcome =
                        service.run("task" + std::to_string(task),
                                    Tensor::randn({3, 32, 32}, rng),
                                    std::move(attempt));
                    if (outcome.ok()) {
                        if (i == 0) {
                            const serve::InferenceResult& result =
                                outcome.value();
                            std::printf(
                                "client %d first result: task=%s "
                                "class=%lld batch=%lld\n",
                                c, result.task.c_str(),
                                static_cast<long long>(
                                    result.predicted_class),
                                static_cast<long long>(result.batch_size));
                        }
                        break;
                    }
                    if (outcome.status() == serve::ServeStatus::overloaded) {
                        ++shed_retries;  // data, not an exception: retry
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                        continue;
                    }
                    std::printf("client %d: task%d failed: %s\n", c, task,
                                serve::to_string(outcome.status()));
                    break;
                }
            }
            if (shed_retries > 0) {
                std::printf("client %d retried %d shed requests\n", c,
                            shed_retries);
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    service.drain();

    std::printf("\n%s\n", pool.stats().to_table_string().c_str());
    service.stop();
    std::filesystem::remove_all(dir);
    return 0;
}
