// Edge-camera scenario: the paper's motivating Pipelined task mode.
//
// An IoT camera hub runs three applications against one backbone:
//   * object recognition   (CIFAR10-like RGB task)
//   * fine-grained tagging (CIFAR100-like RGB task)
//   * garment sorting      (F-MNIST-like grayscale task)
// Frames from the three apps arrive interleaved in one queue. With
// conventional multi-task inference the accelerator must reload a full
// fine-tuned weight set whenever the task changes; with MIME it swaps
// only the per-task thresholds (and the tiny task head).
//
// The example trains all three adaptations, serves an interleaved frame
// queue functionally, and reports the parameter-switch traffic plus the
// simulated energy bill of both schemes.
#include <cstdio>

#include "common/thread_pool.h"
#include "core/multitask.h"
#include "core/trainer.h"
#include "data/task_suite.h"
#include "hw/simulator.h"

using namespace mime;

int main() {
    data::TaskSuiteOptions suite_options;
    suite_options.train_size = 512;
    suite_options.test_size = 96;
    suite_options.cifar100_classes = 20;
    const data::TaskSuite suite = data::make_task_suite(suite_options);

    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.125;
    config.vgg.num_classes = 20;
    config.batchnorm = true;
    core::MimeNetwork network(config);

    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 32;
    options.learning_rate = 3e-3f;
    options.pool = &global_pool();

    std::printf("== edge camera hub: one backbone, three applications ==\n\n");
    std::printf("[1/4] training the shared parent backbone ...\n");
    core::train_backbone(network, suite.family->train_split(suite.parent),
                         options);

    std::printf("[2/4] adapting to the three applications via thresholds"
                " ...\n");
    core::MultiTaskEngine engine(network);
    struct App {
        const char* name;
        std::int64_t task;
        std::int64_t classes;
    };
    const App apps[] = {{"object-recognition", suite.cifar10_like, 10},
                        {"fine-grained-tagging", suite.cifar100_like, 20},
                        {"garment-sorting", suite.fmnist_like, 10}};

    std::vector<data::Dataset> test_sets;
    for (const App& app : apps) {
        network.reset_thresholds(0.05f);
        core::train_thresholds(
            network, suite.family->train_split(app.task), options);
        engine.register_mime_task(
            core::capture_adaptation(network, app.name, app.classes));
        test_sets.push_back(suite.family->test_split(app.task));
        const auto eval =
            core::evaluate(network, test_sets.back(), 64, options.pool);
        std::printf("   %-22s accuracy %.3f\n", app.name, eval.accuracy);
    }

    std::printf("\n[3/4] serving an interleaved frame queue (pipelined task"
                " mode) ...\n");
    const auto queue = core::interleave_tasks(
        {&test_sets[0], &test_sets[1], &test_sets[2]}, 32);
    const double accuracy =
        engine.accuracy(core::MultiTaskEngine::Scheme::mime, queue);
    std::printf("   %zu frames served, mixed-stream accuracy %.3f\n",
                queue.size(), accuracy);
    std::printf("   parameter switches: %lld threshold swaps, %lld full "
                "backbone reloads\n",
                static_cast<long long>(engine.threshold_switches()),
                static_cast<long long>(engine.backbone_switches()));

    std::printf("\n[4/4] the accelerator energy bill for that queue "
                "(full-size VGG16 geometry):\n");
    arch::VggConfig hw_vgg;
    hw_vgg.input_size = 64;
    const auto hw_layers = arch::vgg16_spec(hw_vgg);
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};

    const auto mime = sim.run(hw_layers, hw::pipelined_options(hw::Scheme::mime));
    const auto case1 =
        sim.run(hw_layers, hw::pipelined_options(hw::Scheme::baseline_dense));
    const auto case2 =
        sim.run(hw_layers, hw::pipelined_options(hw::Scheme::baseline_sparse));

    std::printf("   %-34s %14s %12s\n", "scheme", "energy (MAC units)",
                "vs MIME");
    std::printf("   %-34s %14.0f %11.2fx\n",
                "conventional, dense (Case-1)", case1.total_energy.total(),
                case1.total_energy.total() / mime.total_energy.total());
    std::printf("   %-34s %14.0f %11.2fx\n",
                "conventional, zero-skipping (Case-2)",
                case2.total_energy.total(),
                case2.total_energy.total() / mime.total_energy.total());
    std::printf("   %-34s %14.0f %11.2fx\n", "MIME",
                mime.total_energy.total(), 1.0);
    std::printf("\nMIME serves the mixed queue without a single weight-set "
                "reload.\n");
    return 0;
}
