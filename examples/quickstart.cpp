// Quickstart: the whole MIME flow in ~80 lines.
//
//   1. train a parent backbone (ReLU mode),
//   2. freeze it and train per-neuron thresholds for a child task,
//   3. run inference with the threshold mask and inspect the dynamic
//      sparsity,
//   4. compare DRAM storage and pipelined-mode energy against the
//      conventional one-model-per-task approach.
//
// Runs in about a minute on a laptop-class CPU (small synthetic tasks,
// width-scaled VGG16).
#include <cstdio>

#include "common/thread_pool.h"
#include "core/sparsity.h"
#include "core/storage.h"
#include "core/trainer.h"
#include "data/task_suite.h"
#include "hw/simulator.h"

using namespace mime;

int main() {
    // -- data: a parent task and one child task ---------------------------
    data::TaskSuiteOptions suite_options;
    suite_options.train_size = 512;
    suite_options.test_size = 128;
    suite_options.cifar100_classes = 10;
    const data::TaskSuite suite = data::make_task_suite(suite_options);

    // -- model: width-scaled VGG16 with switchable activation sites -------
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.125;
    config.vgg.num_classes = 20;
    config.batchnorm = true;
    core::MimeNetwork network(config);

    core::TrainOptions options;
    options.epochs = 5;
    options.batch_size = 32;
    options.learning_rate = 3e-3f;
    options.pool = &global_pool();

    // -- 1. parent ----------------------------------------------------------
    std::printf("training parent task (20 classes) ...\n");
    core::train_backbone(network,
                         suite.family->train_split(suite.parent), options);
    const auto parent_eval = core::evaluate(
        network, suite.family->test_split(suite.parent), 64, options.pool);
    std::printf("parent test accuracy: %.3f\n\n", parent_eval.accuracy);

    // -- 2. child thresholds on the frozen backbone -------------------------
    std::printf("training thresholds for the child task (backbone frozen)"
                " ...\n");
    network.reset_thresholds(0.05f);
    core::train_thresholds(
        network, suite.family->train_split(suite.cifar10_like), options);
    const auto child_test = suite.family->test_split(suite.cifar10_like);
    const auto child_eval =
        core::evaluate(network, child_test, 64, options.pool);
    std::printf("child test accuracy (thresholds only): %.3f\n\n",
                child_eval.accuracy);

    // -- 3. dynamic neuronal sparsity ---------------------------------------
    const auto sparsity =
        core::measure_sparsity(network, child_test, 64, options.pool);
    std::printf("threshold-induced neuronal sparsity per layer:\n");
    for (std::size_t i = 0; i < sparsity.layer_names.size(); ++i) {
        std::printf("  %-7s %.3f\n", sparsity.layer_names[i].c_str(),
                    sparsity.average_sparsity[i]);
    }
    std::printf("  mean    %.3f\n\n", sparsity.overall());

    // -- 4. what that buys on hardware --------------------------------------
    core::StorageModel storage(network.layer_specs(),
                               network.classifier_spec());
    std::printf("DRAM storage for 3 child tasks: conventional %.2f MiB vs "
                "MIME %.2f MiB (%.2fx)\n",
                storage.conventional_total_bytes(3) / (1024.0 * 1024.0),
                storage.mime_total_bytes(3) / (1024.0 * 1024.0),
                storage.savings(3));

    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    arch::VggConfig hw_vgg;
    hw_vgg.input_size = 64;
    const auto hw_layers = arch::vgg16_spec(hw_vgg);
    const auto case1 =
        sim.run(hw_layers, hw::pipelined_options(hw::Scheme::baseline_dense));
    const auto mime =
        sim.run(hw_layers, hw::pipelined_options(hw::Scheme::mime));
    std::printf("pipelined-mode energy on the systolic array: %.2fx savings "
                "vs the dense per-task baseline\n",
                case1.total_energy.total() / mime.total_energy.total());
    std::printf("pipelined-mode throughput: %.2fx\n",
                case1.total_cycles / mime.total_cycles);
    return 0;
}
