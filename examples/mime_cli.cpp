// mime_cli — drive the whole MIME workflow from the command line.
//
//   mime_cli train-parent --store DIR [--epochs N]
//   mime_cli adapt        --store DIR --task NAME [--epochs N]
//   mime_cli calibrate    --store DIR --task NAME [--sparsity S]
//   mime_cli serve        --store DIR [--items N]
//   mime_cli simulate     [--scheme case1|case2|mime|pruned]
//                         [--mode singular|pipelined] [--csv PATH]
//   mime_cli storage      [--children N]
//
// `train-parent` persists the backbone into an AdaptationStore; `adapt` /
// `calibrate` add per-task threshold sets; `serve` reloads everything and
// runs a pipelined evaluation — demonstrating that the on-disk artifact
// (one backbone + small per-task files) is all a deployment needs.
// Task names map to the built-in suite: cifar10 | cifar100 | fmnist.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/thread_pool.h"
#include "core/adaptation_store.h"
#include "core/calibration.h"
#include "core/sparsity.h"
#include "core/storage.h"
#include "core/trainer.h"
#include "data/task_suite.h"
#include "hw/report.h"
#include "hw/simulator.h"

using namespace mime;

namespace {

struct Args {
    std::string command;
    std::string store = "mime_store";
    std::string task;
    std::string csv;
    std::string scheme = "mime";
    std::string mode = "pipelined";
    std::int64_t epochs = 5;
    std::int64_t items = 32;
    std::int64_t children = 3;
    double sparsity = 0.6;
};

Args parse(int argc, char** argv) {
    Args args;
    if (argc < 2) {
        return args;
    }
    args.command = argv[1];
    for (int i = 2; i + 1 < argc; i += 2) {
        const std::string key = argv[i];
        const std::string value = argv[i + 1];
        if (key == "--store") args.store = value;
        else if (key == "--task") args.task = value;
        else if (key == "--csv") args.csv = value;
        else if (key == "--scheme") args.scheme = value;
        else if (key == "--mode") args.mode = value;
        else if (key == "--epochs") args.epochs = std::atoll(value.c_str());
        else if (key == "--items") args.items = std::atoll(value.c_str());
        else if (key == "--children") args.children = std::atoll(value.c_str());
        else if (key == "--sparsity") args.sparsity = std::atof(value.c_str());
        else {
            std::fprintf(stderr, "unknown option '%s'\n", key.c_str());
            std::exit(2);
        }
    }
    return args;
}

core::MimeNetworkConfig network_config() {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.125;
    config.vgg.num_classes = 20;
    config.batchnorm = true;
    config.seed = 19;
    return config;
}

data::TaskSuite make_suite() {
    data::TaskSuiteOptions options;
    options.seed = 19;
    options.train_size = 640;
    options.test_size = 160;
    options.cifar100_classes = 20;
    return data::make_task_suite(options);
}

std::int64_t task_index(const data::TaskSuite& suite,
                        const std::string& name) {
    if (name == "cifar10") return suite.cifar10_like;
    if (name == "cifar100") return suite.cifar100_like;
    if (name == "fmnist") return suite.fmnist_like;
    std::fprintf(stderr,
                 "unknown task '%s' (use cifar10 | cifar100 | fmnist)\n",
                 name.c_str());
    std::exit(2);
}

core::TrainOptions train_options(std::int64_t epochs) {
    core::TrainOptions options;
    options.epochs = epochs;
    options.batch_size = 32;
    options.learning_rate = 3e-3f;
    options.pool = &global_pool();
    return options;
}

int cmd_train_parent(const Args& args) {
    auto suite = make_suite();
    core::MimeNetwork network(network_config());
    std::printf("training parent (%lld epochs) ...\n",
                static_cast<long long>(args.epochs));
    core::train_backbone(network, suite.family->train_split(suite.parent),
                         train_options(args.epochs));
    const auto eval = core::evaluate(
        network, suite.family->test_split(suite.parent), 64, &global_pool());
    core::AdaptationStore store(args.store);
    store.save_backbone(network);
    std::printf("parent accuracy %.3f; backbone saved to %s (%lld bytes)\n",
                eval.accuracy, args.store.c_str(),
                static_cast<long long>(store.backbone_bytes()));
    return 0;
}

int cmd_adapt(const Args& args, bool calibrate_only) {
    if (args.task.empty()) {
        std::fprintf(stderr, "--task is required\n");
        return 2;
    }
    auto suite = make_suite();
    const std::int64_t task = task_index(suite, args.task);
    const std::int64_t classes = suite.family->task(task).num_classes;

    core::MimeNetwork network(network_config());
    core::AdaptationStore store(args.store);
    store.load_backbone(network);

    const auto train = suite.family->train_split(task);
    if (calibrate_only) {
        std::printf("calibrating thresholds for '%s' at sparsity %.2f ...\n",
                    args.task.c_str(), args.sparsity);
        core::CalibrationOptions options;
        options.target_sparsity = args.sparsity;
        core::calibrate_thresholds(network, train.head(128), options);
        // Head adaptation only (thresholds frozen).
        auto options_head = train_options(std::max<std::int64_t>(
            2, args.epochs / 2));
        for (auto* p : network.threshold_parameters()) {
            p->trainable = false;
        }
        core::train_thresholds(network, train, options_head);
    } else {
        std::printf("training thresholds for '%s' (%lld epochs) ...\n",
                    args.task.c_str(), static_cast<long long>(args.epochs));
        network.reset_thresholds(0.05f);
        core::train_thresholds(network, train, train_options(args.epochs));
    }

    const auto test = suite.family->test_split(task);
    const auto eval = core::evaluate(network, test, 64, &global_pool());
    const auto report = core::measure_sparsity(network, test, 64,
                                               &global_pool());
    store.save_task(core::capture_adaptation(network, args.task, classes));
    std::printf("task '%s': accuracy %.3f, mean sparsity %.3f; adaptation "
                "saved (store now holds %lld adaptation bytes vs %lld "
                "backbone bytes)\n",
                args.task.c_str(), eval.accuracy, report.overall(),
                static_cast<long long>(store.adaptation_bytes()),
                static_cast<long long>(store.backbone_bytes()));
    return 0;
}

int cmd_serve(const Args& args) {
    auto suite = make_suite();
    core::MimeNetwork network(network_config());
    core::AdaptationStore store(args.store);
    store.load_backbone(network);

    core::MultiTaskEngine engine(network);
    const std::int64_t tasks = store.load_all_into(engine);
    if (tasks == 0) {
        std::fprintf(stderr, "store has no adaptations; run 'adapt' first\n");
        return 1;
    }
    std::printf("serving %lld task(s): ", static_cast<long long>(tasks));
    std::vector<data::Dataset> test_sets;
    std::vector<const data::Dataset*> set_ptrs;
    for (const auto& name : store.task_names()) {
        std::printf("%s ", name.c_str());
        test_sets.push_back(
            suite.family->test_split(task_index(suite, name)));
    }
    std::printf("\n");
    for (const auto& ds : test_sets) {
        set_ptrs.push_back(&ds);
    }

    const auto queue = core::interleave_tasks(set_ptrs, args.items);
    const double accuracy =
        engine.accuracy(core::MultiTaskEngine::Scheme::mime, queue);
    std::printf("pipelined queue: %zu items, accuracy %.3f, %lld threshold "
                "swaps, %lld backbone reloads\n",
                queue.size(), accuracy,
                static_cast<long long>(engine.threshold_switches()),
                static_cast<long long>(engine.backbone_switches()));
    return 0;
}

int cmd_simulate(const Args& args) {
    hw::Scheme scheme = hw::Scheme::mime;
    if (args.scheme == "case1") scheme = hw::Scheme::baseline_dense;
    else if (args.scheme == "case2") scheme = hw::Scheme::baseline_sparse;
    else if (args.scheme == "pruned") scheme = hw::Scheme::pruned;
    else if (args.scheme != "mime") {
        std::fprintf(stderr, "unknown scheme '%s'\n", args.scheme.c_str());
        return 2;
    }

    arch::VggConfig vgg;
    vgg.input_size = 64;
    const auto layers = arch::vgg16_spec(vgg);
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    const auto options =
        args.mode == "singular"
            ? hw::singular_options(scheme, hw::PaperTask::cifar10)
            : hw::pipelined_options(scheme);
    const auto result = sim.run(layers, options);

    const std::string name = hw::scheme_name(scheme);
    std::fputs(hw::render_energy_table({{name, &result}}).c_str(), stdout);
    std::printf("total energy %.0f MAC-units, total cycles %.0f\n",
                result.total_energy.total(), result.total_cycles);
    if (!args.csv.empty()) {
        hw::write_csv_file({{name, &result}}, args.csv);
        std::printf("CSV written to %s\n", args.csv.c_str());
    }
    return 0;
}

int cmd_storage(const Args& args) {
    arch::VggConfig vgg;
    vgg.input_size = 64;
    vgg.num_classes = 100;
    core::StorageModel model(arch::vgg16_spec(vgg),
                             arch::vgg16_classifier(vgg));
    for (std::int64_t n = 1; n <= args.children; ++n) {
        std::printf("%lld child task(s): conventional %.2f MiB, MIME %.2f "
                    "MiB, savings %.2fx\n",
                    static_cast<long long>(n),
                    model.conventional_total_bytes(n) / (1024.0 * 1024.0),
                    model.mime_total_bytes(n) / (1024.0 * 1024.0),
                    model.savings(n));
    }
    return 0;
}

void usage() {
    std::puts(
        "usage: mime_cli <command> [options]\n"
        "  train-parent --store DIR [--epochs N]\n"
        "  adapt        --store DIR --task cifar10|cifar100|fmnist"
        " [--epochs N]\n"
        "  calibrate    --store DIR --task NAME [--sparsity S]\n"
        "  serve        --store DIR [--items N]\n"
        "  simulate     [--scheme case1|case2|mime|pruned]"
        " [--mode singular|pipelined] [--csv PATH]\n"
        "  storage      [--children N]");
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse(argc, argv);
    try {
        if (args.command == "train-parent") return cmd_train_parent(args);
        if (args.command == "adapt") return cmd_adapt(args, false);
        if (args.command == "calibrate") return cmd_adapt(args, true);
        if (args.command == "serve") return cmd_serve(args);
        if (args.command == "simulate") return cmd_simulate(args);
        if (args.command == "storage") return cmd_storage(args);
        usage();
        return args.command.empty() ? 2 : 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
