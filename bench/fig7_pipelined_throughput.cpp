// Reproduces paper Fig 7: layerwise throughput in Pipelined task mode,
// normalized to the dense baseline (Case-1). The paper reports ~2.8-3.0x
// improvement for MIME, attributed to dynamic neuronal sparsity reducing
// MAC work in the PE array.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace mime;
using hw::Scheme;

int main() {
    bench::print_banner(
        "Fig 7 — layerwise throughput, Pipelined task mode (normalized to "
        "Case-1)",
        "MIME ~2.8-3.0x throughput vs Case-1 from dynamic neuronal "
        "sparsity");

    const auto layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};

    const auto case1 =
        sim.run(layers, hw::pipelined_options(Scheme::baseline_dense));
    const auto case2 =
        sim.run(layers, hw::pipelined_options(Scheme::baseline_sparse));
    const auto mime = sim.run(layers, hw::pipelined_options(Scheme::mime));

    Table table({"layer", "Case-1 cycles", "Case-2 speedup", "MIME speedup"});
    double mime_min = 1e30;
    double mime_max = 0.0;
    for (const auto& layer : layers) {
        const double c1 = case1.layer(layer.name).cycles;
        const double c2 = case2.layer(layer.name).cycles;
        const double m = mime.layer(layer.name).cycles;
        table.add_row({layer.name, Table::num(c1, 0), Table::ratio(c1 / c2),
                       Table::ratio(c1 / m)});
    }
    for (const auto& name : bench::paper_band_layers()) {
        const double ratio =
            case1.layer(name).cycles / mime.layer(name).cycles;
        mime_min = std::min(mime_min, ratio);
        mime_max = std::max(mime_max, ratio);
    }
    table.print();

    std::printf("\n(band over the paper's even conv layers conv2-conv12)\n");
    bench::print_claim("MIME layerwise throughput vs Case-1", "2.8-3.0x",
                       Table::ratio(mime_min) + " - " +
                           Table::ratio(mime_max));
    bench::print_claim(
        "network end-to-end speedup", "(n/a)",
        Table::ratio(case1.total_cycles / mime.total_cycles));
    return 0;
}
