// Reproduces paper Fig 6: layerwise energy distribution in *Pipelined
// task mode* — a batch of 3 images belonging to CIFAR10, CIFAR100 and
// F-MNIST in succession. Conventional schemes must reload per-task
// weights; MIME reloads only thresholds.
//
// Paper headline: MIME saves ~2.4-3.1x vs Case-1 and ~1.3-2.4x vs
// Case-2, with E_DRAM/E_reg savings most significant in the latter
// convolutional layers.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace mime;
using hw::Scheme;

int main() {
    bench::print_banner(
        "Fig 6 — layerwise energy, Pipelined task mode "
        "(CIFAR10 | CIFAR100 | F-MNIST)",
        "MIME ~2.4-3.1x vs Case-1, ~1.3-2.4x vs Case-2; biggest E_DRAM "
        "wins in latter layers");

    const auto layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};

    const auto case1 =
        sim.run(layers, hw::pipelined_options(Scheme::baseline_dense));
    const auto case2 =
        sim.run(layers, hw::pipelined_options(Scheme::baseline_sparse));
    const auto mime = sim.run(layers, hw::pipelined_options(Scheme::mime));

    Table table({"layer", "case", "E_DRAM", "E_cache", "E_reg", "E_MAC",
                 "total", "vs Case-1"});
    for (const auto& name : bench::paper_figure_layers()) {
        const hw::LayerResult* rows[3] = {&case1.layer(name),
                                          &case2.layer(name),
                                          &mime.layer(name)};
        const char* case_names[3] = {"Case-1", "Case-2", "MIME"};
        for (int i = 0; i < 3; ++i) {
            const auto& e = rows[i]->energy;
            table.add_row({name, case_names[i], Table::num(e.e_dram, 0),
                           Table::num(e.e_cache, 0), Table::num(e.e_reg, 0),
                           Table::num(e.e_mac, 0), Table::num(e.total(), 0),
                           Table::ratio(rows[0]->energy.total() / e.total())});
        }
    }
    table.print();

    double worst_vs1 = 1e30;
    double best_vs1 = 0.0;
    double worst_vs2 = 1e30;
    double best_vs2 = 0.0;
    for (const auto& name : bench::paper_band_layers()) {
        const double c1 = case1.layer(name).energy.total();
        const double c2 = case2.layer(name).energy.total();
        const double m = mime.layer(name).energy.total();
        worst_vs1 = std::min(worst_vs1, c1 / m);
        best_vs1 = std::max(best_vs1, c1 / m);
        worst_vs2 = std::min(worst_vs2, c2 / m);
        best_vs2 = std::max(best_vs2, c2 / m);
    }

    // DRAM savings early vs late layers (the paper's latter-layer claim).
    const double early_dram = case1.layer("conv2").energy.e_dram /
                              mime.layer("conv2").energy.e_dram;
    const double late_dram = case1.layer("conv13").energy.e_dram /
                             mime.layer("conv13").energy.e_dram;

    std::printf("\n(bands over the paper's even conv layers conv2-conv12)\n");
    bench::print_claim("MIME savings vs Case-1 (layer range)", "2.4-3.1x",
                       Table::ratio(worst_vs1) + " - " +
                           Table::ratio(best_vs1));
    bench::print_claim("MIME savings vs Case-2 (layer range)", "1.3-2.4x",
                       Table::ratio(worst_vs2) + " - " +
                           Table::ratio(best_vs2));
    bench::print_claim("E_DRAM saving conv2 -> conv13 grows", "yes",
                       Table::ratio(early_dram) + " -> " +
                           Table::ratio(late_dram) +
                           (late_dram > early_dram ? " (yes)" : " (no)"));
    return 0;
}
