// Reproduces paper Fig 5: layerwise energy distribution of the VGG16
// convolutional layers on the systolic array in *Singular task mode*
// (batch of 3 CIFAR10 images).
//
//   Case-1: baseline weights, no zero-skipping
//   Case-2: baseline weights, zero-skipping at ReLU sparsity
//   Case-3: MIME (shared weights + thresholds, MIME sparsity)
//
// Paper headline: MIME saves ~1.8-2.5x vs Case-1 and ~1.07-1.30x vs
// Case-2; MIME's E_DRAM is slightly *higher* than Case-2 (threshold
// fetches have no payoff without task interleaving).
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace mime;
using hw::Scheme;

int main() {
    bench::print_banner(
        "Fig 5 — layerwise energy, Singular task mode (3x CIFAR10)",
        "MIME ~1.8-2.5x vs Case-1, ~1.07-1.30x vs Case-2; MIME E_DRAM "
        "slightly above Case-2");

    const auto layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};

    const auto case1 = sim.run(
        layers, hw::singular_options(Scheme::baseline_dense,
                                     hw::PaperTask::cifar10));
    const auto case2 = sim.run(
        layers, hw::singular_options(Scheme::baseline_sparse,
                                     hw::PaperTask::cifar10));
    const auto mime = sim.run(
        layers, hw::singular_options(Scheme::mime, hw::PaperTask::cifar10));

    Table table({"layer", "case", "E_DRAM", "E_cache", "E_reg", "E_MAC",
                 "total", "vs Case-1"});
    for (const auto& name : bench::paper_figure_layers()) {
        const hw::LayerResult* rows[3] = {&case1.layer(name),
                                          &case2.layer(name),
                                          &mime.layer(name)};
        const char* case_names[3] = {"Case-1", "Case-2", "MIME"};
        for (int i = 0; i < 3; ++i) {
            const auto& e = rows[i]->energy;
            table.add_row({name, case_names[i], Table::num(e.e_dram, 0),
                           Table::num(e.e_cache, 0), Table::num(e.e_reg, 0),
                           Table::num(e.e_mac, 0), Table::num(e.total(), 0),
                           Table::ratio(rows[0]->energy.total() / e.total())});
        }
    }
    table.print();

    double worst_vs1 = 1e30;
    double best_vs1 = 0.0;
    double worst_vs2 = 1e30;
    double best_vs2 = 0.0;
    int dram_above = 0;
    for (const auto& name : bench::paper_band_layers()) {
        const double c1 = case1.layer(name).energy.total();
        const double c2 = case2.layer(name).energy.total();
        const double m = mime.layer(name).energy.total();
        worst_vs1 = std::min(worst_vs1, c1 / m);
        best_vs1 = std::max(best_vs1, c1 / m);
        worst_vs2 = std::min(worst_vs2, c2 / m);
        best_vs2 = std::max(best_vs2, c2 / m);
        if (mime.layer(name).energy.e_dram >=
            case2.layer(name).energy.e_dram) {
            ++dram_above;
        }
    }

    std::printf("\n(bands over the paper's even conv layers conv2-conv12)\n");
    bench::print_claim("MIME savings vs Case-1 (layer range)", "1.8-2.5x",
                       Table::ratio(worst_vs1) + " - " +
                           Table::ratio(best_vs1));
    bench::print_claim("MIME savings vs Case-2 (layer range)", "1.07-1.30x",
                       Table::ratio(worst_vs2) + " - " +
                           Table::ratio(best_vs2));
    bench::print_claim(
        "MIME E_DRAM above Case-2 (threshold fetches)", "every layer",
        std::to_string(dram_above) + "/" +
            std::to_string(bench::paper_band_layers().size()) + " layers");
    return 0;
}
