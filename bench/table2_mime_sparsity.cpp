// Reproduces paper Table II: test accuracy and average layerwise neuronal
// sparsity of the VGG16 DNN adapted to each child task with MIME
// (frozen W_parent + trained thresholds).
//
// Substitutions (DESIGN.md §2): width-scaled VGG16 ("VGG16-mini") and
// synthetic CIFAR10 / CIFAR100 / F-MNIST analogues — absolute accuracies
// differ from the paper; the qualitative content (thresholds adapt a
// frozen backbone; induced sparsity ~0.55-0.65 at every layer) is the
// reproduction target.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/sparsity.h"
#include "hw/sparsity_profile.h"

using namespace mime;

namespace {

// Paper Table II rows for the summary comparison.
constexpr double kPaperAccuracy[3] = {83.57, 59.42, 88.36};

}  // namespace

int main() {
    bench::print_banner(
        "Table II — MIME: child-task accuracy and layerwise neuronal "
        "sparsity",
        "CIFAR10 83.57% / CIFAR100 59.42% / F-MNIST 88.36%; sparsity "
        "~0.56-0.69 per layer");

    bench::MiniSetup setup = bench::make_mini_setup();
    core::MimeNetwork network(setup.network_config);
    bench::ensure_trained_parent(network, setup);

    const std::vector<std::int64_t> children = setup.suite.children();
    const char* child_names[3] = {"CIFAR10-like", "CIFAR100-like",
                                  "F-MNIST-like"};
    const hw::PaperTask paper_tasks[3] = {
        hw::PaperTask::cifar10, hw::PaperTask::cifar100,
        hw::PaperTask::fmnist};

    std::vector<std::string> headers{"child task", "acc (%)"};
    for (const auto& layer : bench::paper_reported_layers()) {
        headers.push_back(layer);
    }
    Table table(headers);
    Table paper_table(headers);

    for (std::size_t c = 0; c < children.size(); ++c) {
        const auto train =
            setup.suite.family->train_split(children[c]);
        const auto test = setup.suite.family->test_split(children[c]);

        std::printf("[%s] training thresholds on frozen backbone ...\n",
                    child_names[c]);
        network.reset_thresholds(0.05f);
        core::train_thresholds(network, train, setup.train_options);
        const auto eval = core::evaluate(network, test, 64,
                                         setup.train_options.pool);
        const auto sparsity = core::measure_sparsity(
            network, test, 64, setup.train_options.pool);

        std::vector<std::string> row{child_names[c],
                                     Table::num(eval.accuracy * 100.0, 2)};
        for (const auto& layer : bench::paper_reported_layers()) {
            row.push_back(Table::num(sparsity.layer(layer), 4));
        }
        table.add_row(row);

        const auto paper = hw::SparsityProfile::paper_mime(paper_tasks[c]);
        std::vector<std::string> paper_row{
            child_names[c], Table::num(kPaperAccuracy[c], 2)};
        std::int64_t layer_index = 0;
        for (const auto& layer : bench::paper_reported_layers()) {
            // Map layer name back to its index (conv2 → 1, ...).
            for (std::int64_t li = 0; li < 15; ++li) {
                if (("conv" + std::to_string(li + 1)) == layer) {
                    layer_index = li;
                    break;
                }
            }
            paper_row.push_back(
                Table::num(paper.output_sparsity(layer_index), 4));
        }
        paper_table.add_row(paper_row);

        bench::print_claim(
            std::string(child_names[c]) + " mean layerwise sparsity",
            Table::num(paper.average(), 3),
            Table::num(sparsity.overall(), 3));
    }

    std::printf("\nmeasured (this repo, synthetic tasks, VGG16-mini):\n");
    table.print();
    std::printf("\npaper (Table II, real datasets, full VGG16):\n");
    paper_table.print();
    return 0;
}
