// Reproduces paper Fig 9: the hardware design-space ablation under MIME
// in Pipelined task mode, comparing three fixed designs with the natural
// OS mapping (the ablation holds the mapping fixed; a re-optimizing
// mapper would mask the hardware penalty — see DESIGN.md):
//
//   Case-A: PE array 1024, cache 156 KB (Table IV)
//   Case-B: PE array  256, cache 156 KB (reduced PE array)
//   Case-C: PE array 1024, cache 128 KB (reduced cache)
//
// Paper headline: Case-B costs ~1.26-1.41x extra energy in conv5-conv10;
// Case-C's penalty is not significant → prefer a larger PE array over a
// larger cache.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace mime;
using hw::Scheme;

int main() {
    bench::print_banner(
        "Fig 9 — ablation: PE-array size vs cache size (MIME, Pipelined)",
        "Case-B (PE 256): +1.26-1.41x in conv5-conv10; Case-C (cache "
        "128KB): not significant");

    const auto layers = bench::hw_eval_layers();

    hw::SystolicConfig config_a;  // Table IV defaults
    hw::SystolicConfig config_b;
    config_b.pe_array_size = 256;
    hw::SystolicConfig config_c;
    config_c.total_cache_bytes = 128 * 1024;

    auto options = hw::pipelined_options(Scheme::mime);
    options.optimize_tiling = false;  // fixed natural mapping

    const auto a = hw::InferenceSimulator{config_a}.run(layers, options);
    const auto b = hw::InferenceSimulator{config_b}.run(layers, options);
    const auto c = hw::InferenceSimulator{config_c}.run(layers, options);

    Table table({"layer", "Case-A total", "Case-B total", "Case-C total",
                 "B/A", "C/A"});
    double mid_worst = 0.0;
    double mid_best = 1e30;
    for (const auto& layer : layers) {
        const double ea = a.layer(layer.name).energy.total();
        const double eb = b.layer(layer.name).energy.total();
        const double ec = c.layer(layer.name).energy.total();
        table.add_row({layer.name, Table::num(ea, 0), Table::num(eb, 0),
                       Table::num(ec, 0), Table::ratio(eb / ea),
                       Table::ratio(ec / ea)});
        for (const char* mid :
             {"conv5", "conv6", "conv7", "conv8", "conv9", "conv10"}) {
            if (layer.name == mid) {
                mid_worst = std::max(mid_worst, eb / ea);
                mid_best = std::min(mid_best, eb / ea);
            }
        }
    }
    table.print();

    std::printf("\n");
    bench::print_claim("Case-B penalty across conv5-conv10", "1.26-1.41x",
                       Table::ratio(mid_best) + " - " +
                           Table::ratio(mid_worst));
    bench::print_claim(
        "Case-C network penalty", "not significant",
        Table::ratio(c.total_energy.total() / a.total_energy.total()));
    bench::print_claim(
        "Case-B network penalty", "(larger than Case-C)",
        Table::ratio(b.total_energy.total() / a.total_energy.total()));
    bench::print_claim(
        "Case-B throughput penalty", "(4x fewer PEs)",
        Table::ratio(b.total_cycles / a.total_cycles));
    std::printf(
        "\nconclusion (paper §V-C): prefer a larger PE array over a larger\n"
        "cache to reduce repeated fetches of task-specific parameters.\n");
    return 0;
}
