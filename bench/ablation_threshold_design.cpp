// Extension ablation: the MIME threshold-training design choices that
// DESIGN.md calls out.
//
//   (a) beta, the weight of the exp-threshold regularizer L_t (eq. 3):
//       the paper fixes beta = 1e-6 at batch 100; we sweep it and report
//       the accuracy / induced-sparsity trade-off.
//   (b) the straight-through estimator shape: the DST piece-wise linear
//       estimator vs a narrower/flatter variant.
//   (c) learned thresholds vs training-free percentile calibration
//       (core/calibration), at matched target sparsity.
//
// Uses the shared cached parent backbone; each variant trains thresholds
// on the CIFAR10-like child only.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/calibration.h"
#include "core/sparsity.h"
#include "core/trainer.h"

using namespace mime;

namespace {

struct Variant {
    std::string name;
    double accuracy = 0.0;
    double sparsity = 0.0;
    std::string cost;
};

Variant eval_variant(const std::string& name, core::MimeNetwork& network,
                     const data::Dataset& test, const std::string& cost,
                     ThreadPool* pool) {
    Variant v;
    v.name = name;
    network.set_mode(core::ActivationMode::threshold);
    v.accuracy = core::evaluate(network, test, 64, pool).accuracy;
    v.sparsity = core::measure_sparsity(network, test, 64, pool).overall();
    v.cost = cost;
    return v;
}

}  // namespace

int main() {
    bench::print_banner(
        "Ablation — threshold training design choices (extension)",
        "paper fixes beta=1e-6, DST estimator, learned thresholds; this "
        "sweeps all three");

    bench::MiniSetup setup = bench::make_mini_setup();
    core::MimeNetwork network(setup.network_config);
    bench::ensure_trained_parent(network, setup);
    const auto parent_weights = network.snapshot_backbone();

    const auto train = setup.suite.family->train_split(setup.suite.cifar10_like);
    const auto test = setup.suite.family->test_split(setup.suite.cifar10_like);
    ThreadPool* pool = setup.train_options.pool;

    std::vector<Variant> variants;

    // (a) beta sweep.
    for (const float beta : {0.0f, 1e-6f, 1e-4f}) {
        network.load_backbone(parent_weights);
        network.reset_thresholds(0.05f);
        core::TrainOptions options = setup.train_options;
        options.beta = beta;
        core::train_thresholds(network, train, options);
        char name[64];
        std::snprintf(name, sizeof(name), "trained, beta=%.0e", beta);
        variants.push_back(eval_variant(
            name, network, test,
            std::to_string(options.epochs) + " epochs backward", pool));
    }

    // (b) STE variants.
    {
        core::MimeNetworkConfig narrow_cfg = setup.network_config;
        narrow_cfg.ste.inner_width = 0.2f;
        narrow_cfg.ste.outer_width = 0.5f;
        core::MimeNetwork narrow(narrow_cfg);
        narrow.load_backbone(parent_weights);
        narrow.reset_thresholds(0.05f);
        core::train_thresholds(narrow, train, setup.train_options);
        variants.push_back(eval_variant("trained, narrow STE (w=0.2)",
                                        narrow, test, "same", pool));

        core::MimeNetworkConfig flat_cfg = setup.network_config;
        flat_cfg.ste.inner_peak = 1.0f;
        flat_cfg.ste.outer_value = 1.0f;  // rectangular estimator
        core::MimeNetwork flat(flat_cfg);
        flat.load_backbone(parent_weights);
        flat.reset_thresholds(0.05f);
        core::train_thresholds(flat, train, setup.train_options);
        variants.push_back(eval_variant("trained, rectangular STE", flat,
                                        test, "same", pool));
    }

    // (c) training-free percentile calibration at matched sparsity.
    for (const double target : {0.55, 0.65}) {
        network.load_backbone(parent_weights);
        core::CalibrationOptions options;
        options.target_sparsity = target;
        core::calibrate_thresholds(
            network, train.head(std::min<std::int64_t>(128, train.size())),
            options);
        // The task head still needs adapting; train it alone (thresholds
        // frozen) for a fair comparison of the threshold mechanism.
        core::TrainOptions head_only = setup.train_options;
        head_only.epochs = std::max<std::int64_t>(2, head_only.epochs / 3);
        for (auto* p : network.threshold_parameters()) {
            p->trainable = false;
        }
        core::train_thresholds(network, train, head_only);
        for (auto* p : network.threshold_parameters()) {
            p->trainable = true;
        }
        char name[64];
        std::snprintf(name, sizeof(name), "calibrated @%.2f + head", target);
        variants.push_back(eval_variant(
            name, network, test, "1 forward + head epochs", pool));
    }

    Table table({"variant", "test acc", "mean sparsity", "training cost"});
    for (const auto& v : variants) {
        table.add_row({v.name, Table::num(v.accuracy, 3),
                       Table::num(v.sparsity, 3), v.cost});
    }
    std::printf("\n");
    table.print();

    std::printf("\n");
    bench::print_claim("beta=1e-6 beats beta=1e-4 on accuracy",
                       "(regularizer should be gentle)",
                       variants[1].accuracy >= variants[2].accuracy ? "yes"
                                                                    : "no");
    bench::print_claim("higher beta gives higher sparsity", "(expected)",
                       variants[2].sparsity >= variants[0].sparsity - 0.02
                           ? "yes"
                           : "no");
    bench::print_claim(
        "trained thresholds beat calibrated at matched sparsity",
        "(gradient signal helps)",
        variants[1].accuracy > variants.back().accuracy ? "yes" : "no");
    return 0;
}
