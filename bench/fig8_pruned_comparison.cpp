// Reproduces paper Fig 8: MIME vs conventional multi-task inference with
// highly compressed models (90% layerwise weight sparsity, pruned at
// initialization) in Pipelined task mode.
//
// Paper headline: the pruned models win in the initial layers (conv2,
// conv4 — where threshold parameters outnumber weights), MIME wins from
// the point where weights dominate, by ~1.36-2.0x in the latter layers.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace mime;
using hw::Scheme;

int main() {
    bench::print_banner(
        "Fig 8 — MIME vs 90%-weight-sparse pruned models, Pipelined mode",
        "pruned wins conv2/conv4 (T > W there); MIME wins latter layers "
        "~1.36-2.0x");

    const auto layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};

    const auto mime = sim.run(layers, hw::pipelined_options(Scheme::mime));
    const auto pruned = sim.run(layers, hw::pipelined_options(Scheme::pruned));

    Table table({"layer", "T params", "W params", "MIME total",
                 "pruned total", "MIME/pruned", "winner"});
    std::string crossover = "(none)";
    bool mime_ahead = false;
    double best_late_win = 0.0;
    for (const auto& layer : layers) {
        const double m = mime.layer(layer.name).energy.total();
        const double p = pruned.layer(layer.name).energy.total();
        const bool mime_wins = m < p;
        if (mime_wins && !mime_ahead) {
            crossover = layer.name;
            mime_ahead = true;
        }
        if (mime_wins) {
            best_late_win = std::max(best_late_win, p / m);
        }
        table.add_row({layer.name, std::to_string(layer.neuron_count()),
                       std::to_string(layer.weight_count()),
                       Table::num(m, 0), Table::num(p, 0),
                       Table::ratio(m / p),
                       mime_wins ? "MIME" : "pruned"});
    }
    table.print();

    const double conv2 = mime.layer("conv2").energy.total() /
                         pruned.layer("conv2").energy.total();
    std::printf("\n");
    bench::print_claim("pruned wins at conv2 (MIME/pruned > 1)", "yes",
                       Table::ratio(conv2) +
                           (conv2 > 1.0 ? " (yes)" : " (no)"));
    bench::print_claim("first layer where MIME wins", "conv5", crossover);
    bench::print_claim("best MIME win in latter layers", "1.36-2.0x",
                       Table::ratio(best_late_win));
    bench::print_claim(
        "network total (MIME vs pruned)", "(MIME compensates)",
        Table::ratio(pruned.total_energy.total() /
                     mime.total_energy.total()));
    return 0;
}
