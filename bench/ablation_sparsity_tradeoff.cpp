// Extension ablation: the accuracy / energy trade-off as a function of
// target sparsity.
//
// MIME's thresholds pick one operating point on a curve the paper never
// plots: more aggressive masking saves more energy but costs accuracy.
// Using percentile calibration (which dials sparsity directly) plus a
// short head adaptation per point, this bench sweeps target sparsity,
// measures held-out accuracy on the CIFAR10-like child, feeds the
// *measured* per-layer sparsity into the systolic-array simulator, and
// prints the resulting accuracy-vs-energy frontier.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/calibration.h"
#include "core/sparsity.h"
#include "core/trainer.h"
#include "hw/simulator.h"

using namespace mime;

int main() {
    bench::print_banner(
        "Ablation — accuracy vs energy across target sparsity (extension)",
        "the paper reports one operating point (~0.6 sparsity); this "
        "sweeps the dial");

    bench::MiniSetup setup = bench::make_mini_setup();
    core::MimeNetwork network(setup.network_config);
    bench::ensure_trained_parent(network, setup);
    const auto parent_weights = network.snapshot_backbone();

    const auto train =
        setup.suite.family->train_split(setup.suite.cifar10_like);
    const auto test = setup.suite.family->test_split(setup.suite.cifar10_like);
    const auto hw_layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};

    // Dense reference (Case-1) for normalization.
    hw::SimulationOptions dense_options;
    dense_options.scheme = hw::Scheme::baseline_dense;
    dense_options.batch = {0, 0, 0};
    dense_options.profiles = {hw::SparsityProfile::uniform("dense", 0.0)};
    const double dense_energy =
        sim.run(hw_layers, dense_options).total_energy.total();

    Table table({"target sparsity", "achieved (held-out)", "test accuracy",
                 "pipelined energy", "vs dense"});

    for (const double target : {0.3, 0.45, 0.6, 0.75, 0.85}) {
        network.load_backbone(parent_weights);
        core::CalibrationOptions calibration;
        calibration.target_sparsity = target;
        core::calibrate_thresholds(network, train.head(128), calibration);

        // Short head-only adaptation at this operating point.
        core::TrainOptions head_only = setup.train_options;
        head_only.epochs = std::max<std::int64_t>(2, head_only.epochs / 3);
        for (auto* p : network.threshold_parameters()) {
            p->trainable = false;
        }
        core::train_thresholds(network, train, head_only);
        for (auto* p : network.threshold_parameters()) {
            p->trainable = true;
        }

        const auto eval =
            core::evaluate(network, test, 64, setup.train_options.pool);
        const auto measured = core::measure_sparsity(
            network, test, 64, setup.train_options.pool);

        hw::SimulationOptions options;
        options.scheme = hw::Scheme::mime;
        options.batch = {0, 0, 0};
        options.profiles = {
            hw::SparsityProfile("measured", measured.average_sparsity)};
        const double energy =
            sim.run(hw_layers, options).total_energy.total();

        table.add_row({Table::num(target, 2),
                       Table::num(measured.overall(), 3),
                       Table::num(eval.accuracy, 3), Table::num(energy, 0),
                       Table::ratio(dense_energy / energy)});
    }
    std::printf("\n");
    table.print();
    std::printf(
        "\nreading the frontier: energy falls monotonically with sparsity\n"
        "while accuracy holds then collapses — the paper's trained\n"
        "operating point (~0.6) sits where the curve bends.\n");
    return 0;
}
