// Dependency-free micro-kernel bench (plain std::chrono — no
// google-benchmark needed, so it always builds and runs in CI).
//
// Reports, and persists to BENCH_kernels.json:
//   1. dense GEMM GFLOP/s for the compiled microkernel (vs the scalar
//      reference for correctness),
//   2. row-compacted gemm_rows speedup across a density sweep,
//   3. fused threshold-mask apply throughput,
//   4. planned forward on a structurally pruned tiny-VGG: dense vs
//      sparse execution, with bit-match verification and the
//      skipped-MAC fraction,
//   5. int8 qgemm vs float gemm across the tiny-VGG conv shapes,
//   6. int8 quantized planned forward vs the float sparse forward on
//      the same pruned tiny-VGG (A/B-interleaved, min-of-N timing).
//
// `--check` turns the bench into a perf gate: it exits nonzero unless
//   * the sparse planned forward beats dense by >= 1.1x at 75% channel
//     pruning (a silent dense fallback would show ~1.0x and fail),
//   * int8 qgemm beats float gemm by >= 1.5x aggregated over the
//     tiny-VGG shapes,
//   * the int8+sparse planned forward beats the float32 sparse forward
//     by >= 1.3x on the same pruned network.
// MIME_KERNELS_ITERS scales the timing loops (default 30).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "core/mime_network.h"
#include "core/threshold_mask.h"
#include "tensor/gemm.h"
#include "tensor/qgemm.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace mime::bench {
namespace {

int env_int(const char* name, int fallback) {
    const char* env = std::getenv(name);
    if (env == nullptr) {
        return fallback;
    }
    const int value = std::atoi(env);
    return value > 0 ? value : fallback;
}

/// Median-of-three wall-clock seconds for `iters` repetitions of `fn`.
template <typename Fn>
double time_seconds(int iters, Fn&& fn) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) {
            fn();
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        const double s = elapsed.count();
        if (rep == 0 || s < best) {
            best = s;
        }
    }
    return best;
}

/// Interleaved A/B timing: alternates the two candidates within each
/// repetition and keeps each side's minimum. On a noisy machine this is
/// much fairer than timing A's block then B's block — a background
/// burst lands on both sides instead of poisoning one.
template <typename FnA, typename FnB>
std::pair<double, double> ab_time_seconds(int iters, int reps, FnA&& a,
                                          FnB&& b) {
    double best_a = 0.0;
    double best_b = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) {
            a();
        }
        const double sa =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) {
            b();
        }
        const double sb =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (rep == 0 || sa < best_a) {
            best_a = sa;
        }
        if (rep == 0 || sb < best_b) {
            best_b = sb;
        }
    }
    return {best_a, best_b};
}

core::MimeNetworkConfig tiny_vgg_config() {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 5;
    return config;
}

/// Structurally prunes every site to 1/keep_mod channel density.
void prune_channels(core::MimeNetwork& net, std::int64_t keep_mod) {
    for (std::int64_t s = 0; s < net.site_count(); ++s) {
        core::ThresholdMask& mask = net.site(s).mask();
        Tensor& t = mask.thresholds().value;
        const std::int64_t channels = mask.activation_shape().dim(0);
        const std::int64_t extent = mask.activation_shape().numel() / channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const float value =
                (c % keep_mod == 0) ? 0.05f : core::kPrunedThreshold;
            for (std::int64_t i = 0; i < extent; ++i) {
                t.data()[c * extent + i] = value;
            }
        }
        mask.mark_thresholds_dirty();
    }
}

int run(bool check_mode) {
    const int iters = env_int("MIME_KERNELS_ITERS", 30);
    print_banner(
        "micro_kernels_lite: GEMM / gemm_rows / mask-apply / sparse forward",
        "MIME row compaction converts structural sparsity into speedup");
    std::printf("  kernel: %s, iters: %d\n\n", gemm_kernel_name(), iters);

    Json json;
    json.set("bench", "micro_kernels_lite");
    json.set("kernel", gemm_kernel_name());
    json.set("iters", iters);

    // -- 1. dense GEMM ----------------------------------------------------
    const std::int64_t m = 192, n = 192, k = 192;
    Rng rng(11);
    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    Tensor c({m, n});
    Tensor c_ref({m, n});
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
    gemm_reference(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                   0.0f, c_ref.data(), n);
    double max_err = 0.0;
    for (std::int64_t i = 0; i < m * n; ++i) {
        max_err = std::max(
            max_err, static_cast<double>(
                         std::abs(c.data()[i] - c_ref.data()[i])));
    }
    MIME_REQUIRE(max_err < 2e-3, "microkernel diverges from reference");
    const double gemm_s = time_seconds(iters, [&] {
        gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
             c.data(), n);
    });
    const double gflops = 2.0 * static_cast<double>(m * n * k) * iters /
                          gemm_s / 1e9;
    std::printf("  dense gemm %lldx%lldx%lld: %.2f GFLOP/s (max |err| %.2e)\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), gflops, max_err);
    json.set("gemm_gflops", gflops);
    json.set("gemm_max_abs_err", max_err);

    // -- 2. gemm_rows density sweep ---------------------------------------
    std::vector<Json> sweep;
    std::printf("\n  gemm_rows density sweep (vs dense %lldx%lldx%lld):\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k));
    for (const double density : {1.0, 0.5, 0.25, 0.1}) {
        std::vector<std::int64_t> rows;
        for (std::int64_t r = 0; r < k; ++r) {
            if (static_cast<double>(r % 20) < 20.0 * density) {
                rows.push_back(r);
            }
        }
        const double rows_s = time_seconds(iters, [&] {
            gemm_rows(false, false, m, n, k, rows.data(),
                      static_cast<std::int64_t>(rows.size()), 1.0f, a.data(),
                      k, b.data(), n, 0.0f, c.data(), n);
        });
        const double speedup = gemm_s / rows_s;
        const double measured =
            static_cast<double>(rows.size()) / static_cast<double>(k);
        std::printf("    density %.2f (%3zu/%lld rows): %6.2fx dense time\n",
                    measured, rows.size(), static_cast<long long>(k),
                    speedup);
        Json row;
        row.set("density", measured);
        row.set("live_rows", static_cast<std::int64_t>(rows.size()));
        row.set("speedup_vs_dense", speedup);
        sweep.push_back(std::move(row));
    }
    json.set("gemm_rows_sweep", std::move(sweep));

    // -- 3. fused mask apply ----------------------------------------------
    const std::int64_t mask_features = 4096, mask_batch = 64;
    core::ThresholdMask mask({mask_features}, 0.0f);
    const Tensor acts = Tensor::randn({mask_batch, mask_features}, rng);
    Tensor scratch = acts.clone();
    const double mask_s = time_seconds(iters, [&] {
        scratch.copy_from(acts);
        mask.forward_eval_inplace(scratch);
    });
    const double melem =
        static_cast<double>(mask_batch * mask_features) * iters / mask_s /
        1e6;
    std::printf("\n  mask apply (fused zero count): %.0f Melem/s, "
                "sparsity %.3f\n", melem, mask.last_sparsity());
    json.set("mask_apply_melem_per_s", melem);

    // -- 4. planned forward: dense vs sparse ------------------------------
    const std::int64_t batch = 8;
    core::MimeNetwork net(tiny_vgg_config());
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, /*keep_mod=*/4);  // 75% of channels pruned

    Rng input_rng(17);
    const Tensor x = Tensor::randn({batch, 3, 32, 32}, input_rng);
    Workspace workspace;

    net.set_sparse_execution({false, 1.0});
    std::vector<float> dense_logits;
    {
        const Tensor& out = net.forward_planned(x, workspace);  // warm-up
        dense_logits.assign(out.data(), out.data() + out.numel());
    }
    const double dense_s = time_seconds(
        iters, [&] { net.forward_planned(x, workspace); });

    net.set_sparse_execution({true, 1.0});
    const Tensor& sparse_out = net.forward_planned(x, workspace);  // warm-up
    MIME_REQUIRE(std::memcmp(dense_logits.data(), sparse_out.data(),
                             dense_logits.size() * sizeof(float)) == 0,
                 "sparse planned forward must bit-match dense");
    const double sparse_s = time_seconds(
        iters, [&] { net.forward_planned(x, workspace); });

    const double forward_speedup = dense_s / sparse_s;
    const double skipped_fraction =
        net.planned_dense_macs() > 0
            ? static_cast<double>(net.planned_skipped_macs()) /
                  static_cast<double>(net.planned_dense_macs())
            : 0.0;
    std::printf("\n  planned forward, tiny-VGG @75%% channel pruning, "
                "batch %lld:\n", static_cast<long long>(batch));
    std::printf("    dense  %8.3f ms/iter\n", dense_s / iters * 1e3);
    std::printf("    sparse %8.3f ms/iter (bit-matched)\n",
                sparse_s / iters * 1e3);
    print_claim("sparse planned forward speedup", ">= 1.1x (gate)",
                std::to_string(forward_speedup).substr(0, 5) + "x");
    print_claim("skipped-MAC fraction", "~ channel density",
                std::to_string(skipped_fraction).substr(0, 5));
    json.set("forward_batch", batch);
    json.set("forward_dense_ms", dense_s / iters * 1e3);
    json.set("forward_sparse_ms", sparse_s / iters * 1e3);
    json.set("forward_sparse_speedup", forward_speedup);
    json.set("forward_skipped_mac_fraction", skipped_fraction);
    json.set("forward_bit_match", true);

    // -- 5. int8 qgemm vs float gemm on tiny-VGG conv shapes ---------------
    // The im2col GEMMs the pruned tiny-VGG actually runs: m = Cout,
    // n = output spatial, k = Cin * 3 * 3, one shape per conv block.
    struct QShape {
        const char* name;
        std::int64_t m, n, k;
    };
    const QShape qshapes[] = {{"conv1", 4, 1024, 27},
                              {"conv4", 8, 256, 72},
                              {"conv7", 16, 64, 144},
                              {"conv11", 32, 16, 288}};
    std::printf("\n  int8 qgemm vs float gemm (%s, tiny-VGG conv shapes):\n",
                qgemm_kernel_name());
    double float_total_s = 0.0;
    double int8_total_s = 0.0;
    std::vector<Json> qgemm_rows_json;
    for (const QShape& shape : qshapes) {
        const Tensor fa = Tensor::randn({shape.m, shape.k}, rng);
        const Tensor fb = Tensor::randn({shape.k, shape.n}, rng);
        Tensor fc({shape.m, shape.n});
        std::vector<std::int8_t> qa(
            static_cast<std::size_t>(shape.m * shape.k));
        std::vector<std::int8_t> qb(
            static_cast<std::size_t>(shape.k * shape.n));
        for (std::size_t i = 0; i < qa.size(); ++i) {
            qa[i] = static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniform_index(255)) - 127);
        }
        for (std::size_t i = 0; i < qb.size(); ++i) {
            qb[i] = static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniform_index(255)) - 127);
        }
        std::vector<std::int32_t> qc(
            static_cast<std::size_t>(shape.m * shape.n));
        const auto [float_s, int8_s] = ab_time_seconds(
            iters, /*reps=*/5,
            [&] {
                gemm(false, false, shape.m, shape.n, shape.k, 1.0f,
                     fa.data(), shape.k, fb.data(), shape.n, 0.0f, fc.data(),
                     shape.n);
            },
            [&] {
                qgemm(shape.m, shape.n, shape.k, qa.data(), shape.k,
                      qb.data(), shape.n, qc.data(), shape.n);
            });
        float_total_s += float_s;
        int8_total_s += int8_s;
        std::printf("    %-7s %3lldx%4lldx%3lld: %6.2fx float time\n",
                    shape.name, static_cast<long long>(shape.m),
                    static_cast<long long>(shape.n),
                    static_cast<long long>(shape.k), float_s / int8_s);
        Json row;
        row.set("shape", std::string(shape.name));
        row.set("m", shape.m);
        row.set("n", shape.n);
        row.set("k", shape.k);
        row.set("int8_speedup_vs_float", float_s / int8_s);
        qgemm_rows_json.push_back(std::move(row));
    }
    const double qgemm_speedup = float_total_s / int8_total_s;
    print_claim("int8 qgemm speedup (aggregate)", ">= 1.5x (gate)",
                std::to_string(qgemm_speedup).substr(0, 5) + "x");
    json.set("qgemm_kernel", qgemm_kernel_name());
    json.set("qgemm_shapes", std::move(qgemm_rows_json));
    json.set("qgemm_int8_speedup", qgemm_speedup);

    // -- 6. int8 quantized planned forward vs float sparse -----------------
    // Two networks with identical weights and pruning so the A/B can
    // interleave without plan rebuilds (flipping the mode on one
    // network would rebuild its plans every repetition).
    core::MimeNetwork qnet(tiny_vgg_config());
    qnet.set_training(false);
    qnet.set_eval_mode(true);
    qnet.set_mode(core::ActivationMode::threshold);
    prune_channels(qnet, /*keep_mod=*/4);
    qnet.set_sparse_execution({true, 1.0});
    qnet.set_quantized_execution({true});
    Workspace qworkspace;

    net.set_sparse_execution({true, 1.0});
    net.forward_planned(x, workspace);                       // warm-up
    const Tensor& int8_out = qnet.forward_planned(x, qworkspace);  // warm-up
    const Tensor& float_out = net.forward_planned(x, workspace);
    std::int64_t agree = 0;
    const std::int64_t classes = float_out.shape().dim(1);
    for (std::int64_t s = 0; s < batch; ++s) {
        std::int64_t best_f = 0;
        std::int64_t best_q = 0;
        for (std::int64_t j = 1; j < classes; ++j) {
            if (float_out.data()[s * classes + j] >
                float_out.data()[s * classes + best_f]) {
                best_f = j;
            }
            if (int8_out.data()[s * classes + j] >
                int8_out.data()[s * classes + best_q]) {
                best_q = j;
            }
        }
        agree += best_f == best_q;
    }
    const auto [float_fwd_s, int8_fwd_s] = ab_time_seconds(
        iters, /*reps=*/7,
        [&] { net.forward_planned(x, workspace); },
        [&] { qnet.forward_planned(x, qworkspace); });
    const double int8_speedup = float_fwd_s / int8_fwd_s;
    std::printf("\n  quantized planned forward, same pruned tiny-VGG:\n");
    std::printf("    float32 sparse %8.3f ms/iter\n",
                float_fwd_s / iters * 1e3);
    std::printf("    int8    sparse %8.3f ms/iter\n",
                int8_fwd_s / iters * 1e3);
    print_claim("int8 planned forward speedup", ">= 1.3x (gate)",
                std::to_string(int8_speedup).substr(0, 5) + "x");
    std::printf("    top-1 agreement on bench batch: %lld/%lld, "
                "weight max rel err %.4f\n",
                static_cast<long long>(agree),
                static_cast<long long>(batch),
                qnet.planned_quantized_max_rel_error());
    json.set("forward_int8_ms", int8_fwd_s / iters * 1e3);
    json.set("forward_float_sparse_ms", float_fwd_s / iters * 1e3);
    json.set("forward_int8_speedup_vs_float_sparse", int8_speedup);
    json.set("forward_int8_top1_agree", agree);
    json.set("forward_int8_top1_total", batch);
    json.set("quantized_weight_max_rel_error",
             qnet.planned_quantized_max_rel_error());

    write_json_file("BENCH_kernels.json", json);

    if (check_mode) {
        // One machine-readable line per gate so CI log scrapers get the
        // verdict, the measured ratio and the reason without parsing
        // prose.
        bool all_pass = true;
        const struct {
            const char* check;
            double measured;
            double threshold;
            const char* ok;
            const char* bad;
        } gates[] = {
            {"sparse_forward_speedup", forward_speedup, 1.1,
             "sparse planned forward beats dense by the gated margin",
             "dense fallback or kernel regression: sparse speedup below "
             "gate"},
            {"int8_qgemm_speedup", qgemm_speedup, 1.5,
             "int8 qgemm beats float gemm on the tiny-VGG shapes",
             "int8 kernel regression or scalar fallback: qgemm speedup "
             "below gate"},
            {"int8_forward_speedup", int8_speedup, 1.3,
             "int8 planned forward beats float32 sparse by the gated "
             "margin",
             "quantized path regression: int8 forward speedup below gate"},
        };
        for (const auto& gate : gates) {
            const bool pass = gate.measured >= gate.threshold;
            all_pass = all_pass && pass;
            Json verdict;
            verdict.set("check", std::string(gate.check));
            verdict.set("pass", pass);
            verdict.set("measured_speedup", gate.measured);
            verdict.set("threshold", gate.threshold);
            verdict.set("reason",
                        std::string(pass ? gate.ok : gate.bad));
            std::printf("\nCHECK_RESULT %s\n", verdict.to_line().c_str());
            if (!pass) {
                std::printf("CHECK FAILED: %s %.3fx < %.1fx\n", gate.check,
                            gate.measured, gate.threshold);
            }
        }
        if (!all_pass) {
            return 1;
        }
        std::printf("\nall checks passed: sparse %.3fx >= 1.1x, int8 gemm "
                    "%.3fx >= 1.5x, int8 forward %.3fx >= 1.3x\n",
                    forward_speedup, qgemm_speedup, int8_speedup);
    }
    return 0;
}

}  // namespace
}  // namespace mime::bench

int main(int argc, char** argv) {
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        }
    }
    return mime::bench::run(check);
}
