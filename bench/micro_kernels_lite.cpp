// Dependency-free micro-kernel bench (plain std::chrono — no
// google-benchmark needed, so it always builds and runs in CI).
//
// Reports, and persists to BENCH_kernels.json:
//   1. dense GEMM GFLOP/s for the compiled microkernel (vs the scalar
//      reference for correctness),
//   2. row-compacted gemm_rows speedup across a density sweep,
//   3. fused threshold-mask apply throughput,
//   4. planned forward on a structurally pruned tiny-VGG: dense vs
//      sparse execution, with bit-match verification and the
//      skipped-MAC fraction.
//
// `--check` turns the bench into a perf gate: it exits nonzero unless
// the sparse planned forward beats dense by >= 1.1x at 75% channel
// pruning (a silent dense fallback would show ~1.0x and fail).
// MIME_KERNELS_ITERS scales the timing loops (default 30).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "core/mime_network.h"
#include "core/threshold_mask.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace mime::bench {
namespace {

int env_int(const char* name, int fallback) {
    const char* env = std::getenv(name);
    if (env == nullptr) {
        return fallback;
    }
    const int value = std::atoi(env);
    return value > 0 ? value : fallback;
}

/// Median-of-three wall-clock seconds for `iters` repetitions of `fn`.
template <typename Fn>
double time_seconds(int iters, Fn&& fn) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) {
            fn();
        }
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        const double s = elapsed.count();
        if (rep == 0 || s < best) {
            best = s;
        }
    }
    return best;
}

core::MimeNetworkConfig tiny_vgg_config() {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 5;
    return config;
}

/// Structurally prunes every site to 1/keep_mod channel density.
void prune_channels(core::MimeNetwork& net, std::int64_t keep_mod) {
    for (std::int64_t s = 0; s < net.site_count(); ++s) {
        core::ThresholdMask& mask = net.site(s).mask();
        Tensor& t = mask.thresholds().value;
        const std::int64_t channels = mask.activation_shape().dim(0);
        const std::int64_t extent = mask.activation_shape().numel() / channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const float value =
                (c % keep_mod == 0) ? 0.05f : core::kPrunedThreshold;
            for (std::int64_t i = 0; i < extent; ++i) {
                t.data()[c * extent + i] = value;
            }
        }
        mask.mark_thresholds_dirty();
    }
}

int run(bool check_mode) {
    const int iters = env_int("MIME_KERNELS_ITERS", 30);
    print_banner(
        "micro_kernels_lite: GEMM / gemm_rows / mask-apply / sparse forward",
        "MIME row compaction converts structural sparsity into speedup");
    std::printf("  kernel: %s, iters: %d\n\n", gemm_kernel_name(), iters);

    Json json;
    json.set("bench", "micro_kernels_lite");
    json.set("kernel", gemm_kernel_name());
    json.set("iters", iters);

    // -- 1. dense GEMM ----------------------------------------------------
    const std::int64_t m = 192, n = 192, k = 192;
    Rng rng(11);
    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    Tensor c({m, n});
    Tensor c_ref({m, n});
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
    gemm_reference(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                   0.0f, c_ref.data(), n);
    double max_err = 0.0;
    for (std::int64_t i = 0; i < m * n; ++i) {
        max_err = std::max(
            max_err, static_cast<double>(
                         std::abs(c.data()[i] - c_ref.data()[i])));
    }
    MIME_REQUIRE(max_err < 2e-3, "microkernel diverges from reference");
    const double gemm_s = time_seconds(iters, [&] {
        gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
             c.data(), n);
    });
    const double gflops = 2.0 * static_cast<double>(m * n * k) * iters /
                          gemm_s / 1e9;
    std::printf("  dense gemm %lldx%lldx%lld: %.2f GFLOP/s (max |err| %.2e)\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k), gflops, max_err);
    json.set("gemm_gflops", gflops);
    json.set("gemm_max_abs_err", max_err);

    // -- 2. gemm_rows density sweep ---------------------------------------
    std::vector<Json> sweep;
    std::printf("\n  gemm_rows density sweep (vs dense %lldx%lldx%lld):\n",
                static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k));
    for (const double density : {1.0, 0.5, 0.25, 0.1}) {
        std::vector<std::int64_t> rows;
        for (std::int64_t r = 0; r < k; ++r) {
            if (static_cast<double>(r % 20) < 20.0 * density) {
                rows.push_back(r);
            }
        }
        const double rows_s = time_seconds(iters, [&] {
            gemm_rows(false, false, m, n, k, rows.data(),
                      static_cast<std::int64_t>(rows.size()), 1.0f, a.data(),
                      k, b.data(), n, 0.0f, c.data(), n);
        });
        const double speedup = gemm_s / rows_s;
        const double measured =
            static_cast<double>(rows.size()) / static_cast<double>(k);
        std::printf("    density %.2f (%3zu/%lld rows): %6.2fx dense time\n",
                    measured, rows.size(), static_cast<long long>(k),
                    speedup);
        Json row;
        row.set("density", measured);
        row.set("live_rows", static_cast<std::int64_t>(rows.size()));
        row.set("speedup_vs_dense", speedup);
        sweep.push_back(std::move(row));
    }
    json.set("gemm_rows_sweep", std::move(sweep));

    // -- 3. fused mask apply ----------------------------------------------
    const std::int64_t mask_features = 4096, mask_batch = 64;
    core::ThresholdMask mask({mask_features}, 0.0f);
    const Tensor acts = Tensor::randn({mask_batch, mask_features}, rng);
    Tensor scratch = acts.clone();
    const double mask_s = time_seconds(iters, [&] {
        scratch.copy_from(acts);
        mask.forward_eval_inplace(scratch);
    });
    const double melem =
        static_cast<double>(mask_batch * mask_features) * iters / mask_s /
        1e6;
    std::printf("\n  mask apply (fused zero count): %.0f Melem/s, "
                "sparsity %.3f\n", melem, mask.last_sparsity());
    json.set("mask_apply_melem_per_s", melem);

    // -- 4. planned forward: dense vs sparse ------------------------------
    const std::int64_t batch = 8;
    core::MimeNetwork net(tiny_vgg_config());
    net.set_training(false);
    net.set_eval_mode(true);
    net.set_mode(core::ActivationMode::threshold);
    prune_channels(net, /*keep_mod=*/4);  // 75% of channels pruned

    Rng input_rng(17);
    const Tensor x = Tensor::randn({batch, 3, 32, 32}, input_rng);
    Workspace workspace;

    net.set_sparse_execution({false, 1.0});
    std::vector<float> dense_logits;
    {
        const Tensor& out = net.forward_planned(x, workspace);  // warm-up
        dense_logits.assign(out.data(), out.data() + out.numel());
    }
    const double dense_s = time_seconds(
        iters, [&] { net.forward_planned(x, workspace); });

    net.set_sparse_execution({true, 1.0});
    const Tensor& sparse_out = net.forward_planned(x, workspace);  // warm-up
    MIME_REQUIRE(std::memcmp(dense_logits.data(), sparse_out.data(),
                             dense_logits.size() * sizeof(float)) == 0,
                 "sparse planned forward must bit-match dense");
    const double sparse_s = time_seconds(
        iters, [&] { net.forward_planned(x, workspace); });

    const double forward_speedup = dense_s / sparse_s;
    const double skipped_fraction =
        net.planned_dense_macs() > 0
            ? static_cast<double>(net.planned_skipped_macs()) /
                  static_cast<double>(net.planned_dense_macs())
            : 0.0;
    std::printf("\n  planned forward, tiny-VGG @75%% channel pruning, "
                "batch %lld:\n", static_cast<long long>(batch));
    std::printf("    dense  %8.3f ms/iter\n", dense_s / iters * 1e3);
    std::printf("    sparse %8.3f ms/iter (bit-matched)\n",
                sparse_s / iters * 1e3);
    print_claim("sparse planned forward speedup", ">= 1.1x (gate)",
                std::to_string(forward_speedup).substr(0, 5) + "x");
    print_claim("skipped-MAC fraction", "~ channel density",
                std::to_string(skipped_fraction).substr(0, 5));
    json.set("forward_batch", batch);
    json.set("forward_dense_ms", dense_s / iters * 1e3);
    json.set("forward_sparse_ms", sparse_s / iters * 1e3);
    json.set("forward_sparse_speedup", forward_speedup);
    json.set("forward_skipped_mac_fraction", skipped_fraction);
    json.set("forward_bit_match", true);

    write_json_file("BENCH_kernels.json", json);

    if (check_mode) {
        // One machine-readable line so CI log scrapers get the verdict,
        // the measured ratio and the reason without parsing prose.
        const bool pass = forward_speedup >= 1.1;
        Json verdict;
        verdict.set("check", "sparse_forward_speedup");
        verdict.set("pass", pass);
        verdict.set("measured_speedup", forward_speedup);
        verdict.set("threshold", 1.1);
        verdict.set("skipped_mac_fraction", skipped_fraction);
        verdict.set("reason",
                    pass ? std::string("sparse planned forward beats dense "
                                       "by the gated margin")
                         : std::string("dense fallback or kernel "
                                       "regression: sparse speedup below "
                                       "gate"));
        std::printf("\nCHECK_RESULT %s\n", verdict.to_line().c_str());
        if (!pass) {
            std::printf("CHECK FAILED: sparse speedup %.3fx < 1.1x\n",
                        forward_speedup);
            return 1;
        }
        std::printf("check passed: sparse speedup %.3fx >= 1.1x\n",
                    forward_speedup);
    }
    return 0;
}

}  // namespace
}  // namespace mime::bench

int main(int argc, char** argv) {
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        }
    }
    return mime::bench::run(check);
}
