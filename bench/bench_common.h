// Shared infrastructure for the reproduction benches.
//
// Every bench prints (a) the rows of the corresponding paper table /
// figure, and (b) a paper-vs-measured summary of the headline ratios.
// Training benches share a cached parent model (artifact directory
// MIME_ARTIFACT_DIR, default ./mime_bench_artifacts) so the suite can be
// run end-to-end with `for b in build/bench/*; do $b; done`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "arch/vgg.h"
#include "common/json.h"
#include "core/mime_network.h"
#include "core/trainer.h"
#include "data/task_suite.h"
#include "hw/simulator.h"

namespace mime::bench {

/// Prints a bench header: which paper artifact is being regenerated and
/// what the paper claims.
void print_banner(const std::string& experiment,
                  const std::string& paper_claim);

/// Prints one "paper vs measured" summary line.
void print_claim(const std::string& metric, const std::string& paper,
                 const std::string& measured);

/// Ordered JSON tree for machine-readable bench artifacts
/// (BENCH_kernels.json, BENCH_serve.json). The implementation moved to
/// src/common/json.h so the src/obs/ exporters can share it; the alias
/// keeps every bench spelling `bench::Json` unchanged.
using Json = ::mime::Json;

/// Writes `json` to MIME_BENCH_JSON_DIR/filename (dir defaults to the
/// current working directory) and logs the path.
void write_json_file(const std::string& filename, const Json& json);

/// Writes an arbitrary text body (e.g. a Prometheus metrics dump) to
/// MIME_BENCH_JSON_DIR/filename and logs the path.
void write_text_file(const std::string& filename, const std::string& body);

/// The trainable mini setup (width-scaled VGG16 + synthetic task suite);
/// scale is controlled by MIME_BENCH_SCALE (0 = quick smoke, 1 = default
/// mini run).
struct MiniSetup {
    data::TaskSuite suite;
    core::MimeNetworkConfig network_config;
    core::TrainOptions train_options;
};

MiniSetup make_mini_setup();

/// Loads the trained parent backbone from the artifact cache, or trains
/// it (on the suite's parent task) and saves it. Returns parent test
/// accuracy (freshly evaluated either way).
double ensure_trained_parent(core::MimeNetwork& network, MiniSetup& setup);

/// The hardware-evaluation geometry: full-size VGG16 at input 64 (see
/// DESIGN.md for why this reproduces the paper's threshold/weight
/// crossovers).
std::vector<arch::LayerSpec> hw_eval_layers();

/// Names of the layers the paper's tables report (conv2, conv4, conv5,
/// conv7, conv8, conv9, conv10, conv12, conv13, conv14, conv15).
const std::vector<std::string>& paper_reported_layers();

/// Names of the even-numbered layers shown in the paper's Figs 5-9.
const std::vector<std::string>& paper_figure_layers();

/// The even-numbered *convolutional* layers (conv2..conv12) over which
/// the paper's headline energy bands are computed (the fc layers
/// conv14/15 are weight-DRAM-bound and sit outside those bands).
const std::vector<std::string>& paper_band_layers();

}  // namespace mime::bench
