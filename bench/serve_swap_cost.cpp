// Self-checking micro-benchmark: installing a task's threshold set must
// cost O(threshold bytes), not O(weight bytes).
//
// Times MimeNetwork::load_thresholds (the MIME task switch) against
// load_backbone (the conventional task switch) on the same network and
// asserts the measured time ratio stays within an order of magnitude of
// the byte ratio. A regression that reallocates or touches the backbone
// on the threshold path trips the check and exits nonzero.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "common/check.h"
#include "common/table.h"
#include "core/mime_network.h"

using namespace mime;

namespace {

double time_per_call_us(std::int64_t iterations,
                        const std::function<void()>& body) {
    const auto start = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < iterations; ++i) {
        body();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::micro>(elapsed).count() /
           static_cast<double>(iterations);
}

}  // namespace

int main() {
    bench::print_banner(
        "Threshold-set swap cost vs backbone swap cost",
        "task switch streams T_child bytes only — never W_parent");

    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.25;  // big enough for a stable ratio
    config.vgg.num_classes = 10;
    config.seed = 7;
    core::MimeNetwork network(config);

    const core::ThresholdSet thresholds =
        network.snapshot_thresholds("bench");
    const std::vector<Tensor> backbone = network.snapshot_backbone();

    std::int64_t threshold_bytes =
        thresholds.parameter_count() *
        static_cast<std::int64_t>(sizeof(float));
    std::int64_t backbone_bytes = 0;
    for (const Tensor& tensor : backbone) {
        backbone_bytes +=
            tensor.numel() * static_cast<std::int64_t>(sizeof(float));
    }

    const std::int64_t iterations = 2000;
    const double threshold_us = time_per_call_us(
        iterations, [&] { network.load_thresholds(thresholds); });
    const double backbone_us = time_per_call_us(
        iterations / 10, [&] { network.load_backbone(backbone); });

    Table table({"switch", "bytes", "time/call (us)", "MB/s"});
    table.add_row({"thresholds (MIME)", Table::bytes(threshold_bytes),
                   Table::num(threshold_us, 2),
                   Table::num(threshold_bytes / threshold_us, 1)});
    table.add_row({"backbone (conventional)", Table::bytes(backbone_bytes),
                   Table::num(backbone_us, 2),
                   Table::num(backbone_bytes / backbone_us, 1)});
    table.print();

    const double byte_ratio = static_cast<double>(backbone_bytes) /
                              static_cast<double>(threshold_bytes);
    const double time_ratio = backbone_us / threshold_us;
    bench::print_claim("backbone/threshold byte ratio",
                       "threshold set << backbone",
                       Table::ratio(byte_ratio));
    bench::print_claim("backbone/threshold time ratio",
                       "tracks byte ratio", Table::ratio(time_ratio));

    // The assertion: if the threshold path regressed to O(weight bytes)
    // the time ratio would collapse to ~1x, while O(threshold bytes)
    // keeps it near the byte ratio (~14x at this width_scale). Requiring
    // a third of the byte ratio catches the regression with a wide
    // margin for timer noise on shared CI runners.
    MIME_REQUIRE(time_ratio > byte_ratio / 3.0,
                 "threshold swap is no longer O(threshold bytes): "
                 "backbone/threshold time ratio " +
                     std::to_string(time_ratio) + " vs byte ratio " +
                     std::to_string(byte_ratio));
    std::printf("\nOK: threshold swap cost scales with threshold bytes\n");
    return 0;
}
