// Allocation micro-bench for the planned forward executor.
//
// Contrasts the legacy allocate-per-call forward (fresh im2col buffer +
// output tensor per conv, mask per activation site, eval caches) with
// the planned path (ForwardPlan buffers + Workspace scratch) on both
// reference architectures. Reports req/s, tensor-storage allocations
// and bytes per batch (via the Tensor allocation probe), and the
// steady-state workspace footprint — and *asserts* that the planned
// path performs zero tensor-storage allocations after its warm-up
// batch (dense, sparse, and int8 quantized variants alike), so CI
// catches any regression that reintroduces heap traffic on the
// serving hot path.
//
// Environment knobs:
//   MIME_ALLOC_ITERS  batches per measurement (default 20)
//   MIME_ALLOC_BATCH  batch size (default 8)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/plain_cnn.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/table.h"
#include "core/mime_network.h"
#include "core/threshold_mask.h"
#include "tensor/workspace.h"

using namespace mime;

namespace {

std::int64_t env_int(const char* name, std::int64_t fallback) {
    const char* value = std::getenv(name);
    return value != nullptr ? std::atoll(value) : fallback;
}

struct PathResult {
    double req_per_s = 0.0;
    double allocs_per_batch = 0.0;
    double alloc_kb_per_batch = 0.0;
    std::size_t workspace_peak = 0;
    std::size_t plan_buffers = 0;
};

core::MimeNetworkConfig vgg_config() {
    core::MimeNetworkConfig config;
    config.vgg.input_size = 32;
    config.vgg.width_scale = 0.0625;
    config.vgg.num_classes = 10;
    config.seed = 5;
    return config;
}

core::MimeNetworkConfig cnn_config() {
    arch::PlainCnnConfig cnn;
    cnn.input_size = 32;
    cnn.blocks = {{16, 2}, {32, 2}};
    cnn.fc_widths = {64};
    cnn.num_classes = 10;
    core::MimeNetworkConfig config;
    config.custom_layers = arch::plain_cnn_spec(cnn);
    config.custom_classifier = arch::plain_cnn_classifier(cnn);
    config.seed = 7;
    return config;
}

PathResult run_legacy(core::MimeNetwork& net, const Tensor& x,
                      std::int64_t iters) {
    net.set_eval_mode(false);  // the true old path, caches and all
    net.forward(x);            // warm-up parity with the planned run
    const std::int64_t alloc0 = Tensor::storage_allocation_count();
    const std::int64_t bytes0 = Tensor::storage_allocation_bytes();
    const auto started = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
        net.forward(x);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    PathResult result;
    result.req_per_s =
        static_cast<double>(iters * x.shape().dim(0)) / elapsed.count();
    result.allocs_per_batch =
        static_cast<double>(Tensor::storage_allocation_count() - alloc0) /
        static_cast<double>(iters);
    result.alloc_kb_per_batch =
        static_cast<double>(Tensor::storage_allocation_bytes() - bytes0) /
        static_cast<double>(iters) / 1024.0;
    return result;
}

PathResult run_planned(core::MimeNetwork& net, const Tensor& x,
                       std::int64_t iters, bool sparse,
                       bool quantized = false) {
    net.set_eval_mode(true);
    net.set_sparse_execution({sparse, nn::kDefaultSparseDensityCutoff});
    net.set_quantized_execution({quantized});
    Workspace workspace;
    net.forward_planned(x, workspace);  // warm-up: plan build + reserve
    const std::int64_t alloc0 = Tensor::storage_allocation_count();
    const std::int64_t bytes0 = Tensor::storage_allocation_bytes();
    const auto started = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
        net.forward_planned(x, workspace);
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    const std::int64_t allocs = Tensor::storage_allocation_count() - alloc0;
    MIME_REQUIRE(allocs == 0,
                 "planned forward allocated " + std::to_string(allocs) +
                     " tensor storage blocks after warm-up (expected 0)");
    PathResult result;
    result.req_per_s =
        static_cast<double>(iters * x.shape().dim(0)) / elapsed.count();
    result.allocs_per_batch = 0.0;
    result.alloc_kb_per_batch =
        static_cast<double>(Tensor::storage_allocation_bytes() - bytes0) /
        static_cast<double>(iters) / 1024.0;
    result.workspace_peak = workspace.peak_bytes();
    result.plan_buffers = net.planned_buffer_bytes();
    return result;
}

/// Structurally prunes every site to 1/4 channel density so the sparse
/// planned path has dead rows to skip.
void prune_channels(core::MimeNetwork& net) {
    for (std::int64_t s = 0; s < net.site_count(); ++s) {
        core::ThresholdMask& mask = net.site(s).mask();
        Tensor& t = mask.thresholds().value;
        const std::int64_t channels = mask.activation_shape().dim(0);
        const std::int64_t extent =
            mask.activation_shape().numel() / channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const float value =
                (c % 4 == 0) ? 0.1f : core::kPrunedThreshold;
            for (std::int64_t i = 0; i < extent; ++i) {
                t.data()[c * extent + i] = value;
            }
        }
        mask.mark_thresholds_dirty();
    }
}

}  // namespace

int main() {
    bench::print_banner(
        "Forward allocation — legacy allocate-per-call vs planned executor",
        "after one warm-up batch a planned forward performs zero heap "
        "(tensor-storage) allocations; steady-state footprint = plan "
        "buffers + workspace peak");

    const std::int64_t iters = env_int("MIME_ALLOC_ITERS", 20);
    const std::int64_t batch = env_int("MIME_ALLOC_BATCH", 8);

    Table table({"arch", "path", "req/s", "allocs/batch", "alloc KB/batch",
                 "ws peak B", "plan buffers B"});
    double legacy_allocs = 0.0;
    double speedup_sum = 0.0;
    double sparse_speedup_sum = 0.0;
    int arch_count = 0;

    const std::pair<std::string, core::MimeNetworkConfig> configs[] = {
        {"vgg16(w/16)", vgg_config()},
        {"plain-cnn", cnn_config()},
    };
    for (const auto& [name, config] : configs) {
        core::MimeNetwork net(config);
        net.set_training(false);
        net.set_mode(core::ActivationMode::threshold);
        net.reset_thresholds(0.1f);
        Rng rng(17);
        const Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);

        const PathResult legacy = run_legacy(net, x, iters);
        const PathResult planned =
            run_planned(net, x, iters, /*sparse=*/false);
        // Same plan, structurally pruned thresholds: dense pays the full
        // MACs anyway, sparse skips the dead rows — both must stay
        // allocation-free (run_planned asserts it).
        prune_channels(net);
        const PathResult pruned_dense =
            run_planned(net, x, iters, /*sparse=*/false);
        const PathResult pruned_sparse =
            run_planned(net, x, iters, /*sparse=*/true);
        // Int8 quantized plan over the same pruned sparse structure:
        // the int8 slabs live in the plan/workspace like everything
        // else, so the zero-allocation guarantee must hold here too
        // (run_planned asserts it).
        const PathResult pruned_int8 = run_planned(
            net, x, iters, /*sparse=*/true, /*quantized=*/true);
        net.set_quantized_execution({false});
        legacy_allocs += legacy.allocs_per_batch;
        speedup_sum += planned.req_per_s / legacy.req_per_s;
        sparse_speedup_sum +=
            pruned_sparse.req_per_s / pruned_dense.req_per_s;
        ++arch_count;

        table.add_row({name, "legacy", Table::num(legacy.req_per_s, 1),
                       Table::num(legacy.allocs_per_batch, 1),
                       Table::num(legacy.alloc_kb_per_batch, 1), "-", "-"});
        table.add_row({name, "planned", Table::num(planned.req_per_s, 1),
                       "0", "0.0", std::to_string(planned.workspace_peak),
                       std::to_string(planned.plan_buffers)});
        table.add_row({name, "planned dense (75% pruned)",
                       Table::num(pruned_dense.req_per_s, 1), "0", "0.0",
                       std::to_string(pruned_dense.workspace_peak),
                       std::to_string(pruned_dense.plan_buffers)});
        table.add_row({name, "planned sparse (75% pruned)",
                       Table::num(pruned_sparse.req_per_s, 1), "0", "0.0",
                       std::to_string(pruned_sparse.workspace_peak),
                       std::to_string(pruned_sparse.plan_buffers)});
        table.add_row({name, "planned int8 sparse (75% pruned)",
                       Table::num(pruned_int8.req_per_s, 1), "0", "0.0",
                       std::to_string(pruned_int8.workspace_peak),
                       std::to_string(pruned_int8.plan_buffers)});
    }
    table.print();

    bench::print_claim("planned allocations per batch after warm-up",
                       "0 (plan-once / execute-many)",
                       "0 (asserted: dense, sparse, and int8 sparse)");
    bench::print_claim(
        "legacy allocations per batch (mean over archs)", "> 0",
        Table::num(legacy_allocs / arch_count, 1));
    bench::print_claim(
        "planned vs legacy throughput (mean over archs)", ">= ~1x",
        Table::ratio(speedup_sum / arch_count));
    bench::print_claim(
        "sparse vs dense planned @75% pruning (mean over archs)",
        "> 1x (row compaction)",
        Table::ratio(sparse_speedup_sum / arch_count));
    return 0;
}
