#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/logging.h"
#include "nn/serialize.h"

namespace mime::bench {

void print_banner(const std::string& experiment,
                  const std::string& paper_claim) {
    std::printf("\n============================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf("============================================================\n");
}

void print_claim(const std::string& metric, const std::string& paper,
                 const std::string& measured) {
    std::printf("  %-44s paper: %-14s measured: %s\n", metric.c_str(),
                paper.c_str(), measured.c_str());
}

void write_text_file(const std::string& filename, const std::string& body) {
    const char* env = std::getenv("MIME_BENCH_JSON_DIR");
    const std::filesystem::path dir = env != nullptr ? env : ".";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path path = dir / filename;
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    if (f == nullptr) {
        std::printf("  (could not write %s)\n", path.string().c_str());
        return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("  wrote %s\n", path.string().c_str());
}

void write_json_file(const std::string& filename, const Json& json) {
    write_text_file(filename, json.to_string() + "\n");
}

namespace {

int bench_scale() {
    const char* env = std::getenv("MIME_BENCH_SCALE");
    if (env == nullptr) {
        return 1;
    }
    return std::atoi(env) <= 0 ? 0 : 1;
}

std::string artifact_dir() {
    const char* env = std::getenv("MIME_ARTIFACT_DIR");
    return env != nullptr ? env : "mime_bench_artifacts";
}

}  // namespace

MiniSetup make_mini_setup() {
    const bool quick = bench_scale() == 0;

    data::TaskSuiteOptions suite_options;
    suite_options.seed = 19;
    suite_options.train_size = quick ? 128 : 768;
    suite_options.test_size = quick ? 64 : 192;
    suite_options.cifar100_classes = quick ? 10 : 20;

    MiniSetup setup;
    setup.suite = data::make_task_suite(suite_options);

    setup.network_config.vgg.input_size = 32;
    setup.network_config.vgg.width_scale = 0.125;
    // Head sized for the largest task (parent: 20 / cifar100-like).
    setup.network_config.vgg.num_classes =
        std::max<std::int64_t>(20, suite_options.cifar100_classes);
    setup.network_config.batchnorm = true;
    setup.network_config.seed = 19;

    setup.train_options.epochs = quick ? 2 : 6;
    setup.train_options.batch_size = 32;
    setup.train_options.learning_rate = 3e-3f;
    setup.train_options.pool = &global_pool();
    return setup;
}

double ensure_trained_parent(core::MimeNetwork& network, MiniSetup& setup) {
    const std::string dir = artifact_dir();
    const std::string path =
        dir + "/parent_w" +
        std::to_string(setup.network_config.vgg.num_classes) + "_s" +
        std::to_string(bench_scale()) + ".bin";

    const auto parent_test =
        setup.suite.family->test_split(setup.suite.parent);

    bool loaded = false;
    if (std::filesystem::exists(path)) {
        try {
            nn::load_parameters_file(network.network(), path);
            std::printf("[parent] loaded cached weights from %s\n",
                        path.c_str());
            loaded = true;
        } catch (const std::exception& e) {
            std::printf("[parent] stale cache (%s); retraining\n", e.what());
        }
    }
    if (!loaded) {
        std::printf("[parent] training parent task (%lld samples, %lld epochs)"
                    " ...\n",
                    static_cast<long long>(
                        setup.suite.family->parent().train_size),
                    static_cast<long long>(setup.train_options.epochs));
        const auto parent_train =
            setup.suite.family->train_split(setup.suite.parent);
        core::train_backbone(network, parent_train, setup.train_options);
        std::filesystem::create_directories(dir);
        nn::save_parameters_file(network.network(), path);
        std::printf("[parent] cached weights to %s\n", path.c_str());
    }
    const double accuracy =
        core::evaluate(network, parent_test, 64, setup.train_options.pool)
            .accuracy;
    std::printf("[parent] test accuracy: %.4f (paper: ImageNet top-1 0.7336 "
                "at full scale)\n",
                accuracy);
    return accuracy;
}

std::vector<arch::LayerSpec> hw_eval_layers() {
    arch::VggConfig config;
    config.input_size = 64;
    config.num_classes = 100;
    return arch::vgg16_spec(config);
}

const std::vector<std::string>& paper_reported_layers() {
    static const std::vector<std::string> layers{
        "conv2", "conv4",  "conv5",  "conv7",  "conv8", "conv9",
        "conv10", "conv12", "conv13", "conv14", "conv15"};
    return layers;
}

const std::vector<std::string>& paper_figure_layers() {
    static const std::vector<std::string> layers{
        "conv2", "conv4", "conv6", "conv8", "conv10", "conv12", "conv14"};
    return layers;
}

const std::vector<std::string>& paper_band_layers() {
    static const std::vector<std::string> layers{
        "conv2", "conv4", "conv6", "conv8", "conv10", "conv12"};
    return layers;
}

}  // namespace mime::bench
