// Reproduces paper Fig 1 / Fig 4: off-chip DRAM storage of all network
// parameters vs. number of child tasks, conventional multi-task inference
// (one fine-tuned weight set per task) against MIME (one W_parent + one
// threshold set per child). Paper headline: ~3.48x savings at 3 children
// and "> n x" savings for n children.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/storage.h"

using namespace mime;

int main() {
    bench::print_banner(
        "Fig 1 / Fig 4 — off-chip DRAM storage vs. number of child tasks",
        "~3.48x storage savings at 3 child tasks; > n x for n children");

    arch::VggConfig vgg;
    vgg.input_size = 64;   // hardware-evaluation geometry (DESIGN.md §2)
    vgg.num_classes = 100; // largest child task (CIFAR100)
    const auto layers = arch::vgg16_spec(vgg);
    const auto classifier = arch::vgg16_classifier(vgg);

    core::StorageModel model(layers, classifier);

    std::printf("one weight set W: %s   one threshold set T: %s   T/W = %.4f\n\n",
                Table::bytes(static_cast<double>(model.weight_bytes())).c_str(),
                Table::bytes(static_cast<double>(model.threshold_bytes()))
                    .c_str(),
                static_cast<double>(model.threshold_bytes()) /
                    static_cast<double>(model.weight_bytes()));

    Table table({"child tasks", "conventional", "MIME", "savings",
                 "> n x ?"});
    double savings_at_3 = 0.0;
    for (std::int64_t n = 1; n <= 8; ++n) {
        const double savings = model.savings(n);
        if (n == 3) {
            savings_at_3 = savings;
        }
        table.add_row(
            {std::to_string(n),
             Table::bytes(
                 static_cast<double>(model.conventional_total_bytes(n))),
             Table::bytes(static_cast<double>(model.mime_total_bytes(n))),
             Table::ratio(savings),
             savings > static_cast<double>(n) ? "yes" : "no"});
    }
    table.print();

    // The alternative accounting conventions (see DESIGN.md).
    core::StorageModelConfig children_only;
    children_only.count_parent_model = false;
    core::StorageModel model_children(layers, classifier, children_only);
    core::StorageModelConfig with_heads;
    with_heads.count_child_heads = true;
    core::StorageModel model_heads(layers, classifier, with_heads);

    std::printf("\n");
    bench::print_claim("savings at 3 children (parent counted)", "~3.48x",
                       Table::ratio(savings_at_3));
    bench::print_claim("savings at 3 children (children only)", "(n/a)",
                       Table::ratio(model_children.savings(3)));
    bench::print_claim("savings at 3 children (incl. child heads)", "(n/a)",
                       Table::ratio(model_heads.savings(3)));
    bench::print_claim("> n x rule over paper range n in 1..3", "holds",
                       model.savings(1) > 1 && model.savings(2) > 2 &&
                               model.savings(3) > 3
                           ? "holds"
                           : "violated");
    return 0;
}
