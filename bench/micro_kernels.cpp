// google-benchmark micro-benchmarks for the library's compute kernels and
// the hardware simulator itself (these measure this repository's code, not
// a paper artifact).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/threshold_mask.h"
#include "data/task_suite.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"

namespace {

using namespace mime;

void BM_GemmSingleThread(benchmark::State& state) {
    const auto n = static_cast<std::int64_t>(state.range(0));
    Rng rng(1);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    Tensor c({n, n});
    for (auto _ : state) {
        gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
             c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmSingleThread)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmThreaded(benchmark::State& state) {
    const auto n = static_cast<std::int64_t>(state.range(0));
    Rng rng(1);
    ThreadPool pool(8);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    Tensor c({n, n});
    for (auto _ : state) {
        gemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
             c.data(), n, &pool);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmThreaded)->Arg(256)->Arg(512);

void BM_GemmRows(benchmark::State& state) {
    const auto n = static_cast<std::int64_t>(state.range(0));
    // Keep every (100/range(1))-th row: range(1)=4 -> 25% density.
    const auto keep_mod = static_cast<std::int64_t>(state.range(1));
    Rng rng(1);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    Tensor c({n, n});
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < n; ++r) {
        if (r % keep_mod == 0) {
            rows.push_back(r);
        }
    }
    for (auto _ : state) {
        gemm_rows(false, false, n, n, n, rows.data(),
                  static_cast<std::int64_t>(rows.size()), 1.0f, a.data(), n,
                  b.data(), n, 0.0f, c.data(), n);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n *
                            static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_GemmRows)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 10});

void BM_Conv2dForward(benchmark::State& state) {
    Rng rng(2);
    nn::Conv2d conv(32, 64, 3, 1, 1, rng);
    const Tensor x = Tensor::randn({4, 32, 16, 16}, rng);
    for (auto _ : state) {
        Tensor y = conv.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_Conv2dForward);

void BM_ThresholdMaskForward(benchmark::State& state) {
    Rng rng(3);
    core::ThresholdMask mask({64, 16, 16}, 0.1f);
    const Tensor y = Tensor::randn({8, 64, 16, 16}, rng);
    for (auto _ : state) {
        Tensor a = mask.forward(y);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * y.numel());
}
BENCHMARK(BM_ThresholdMaskForward);

void BM_SyntheticDatasetGeneration(benchmark::State& state) {
    for (auto _ : state) {
        data::TaskSuiteOptions options;
        options.train_size = 64;
        options.test_size = 8;
        options.cifar100_classes = 10;
        const auto suite = data::make_task_suite(options);
        const auto ds = suite.family->train_split(suite.cifar10_like);
        benchmark::DoNotOptimize(ds.images().data());
    }
}
BENCHMARK(BM_SyntheticDatasetGeneration);

void BM_SimulatorFullVgg(benchmark::State& state) {
    const auto layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    const auto options = hw::pipelined_options(hw::Scheme::mime);
    for (auto _ : state) {
        const auto result = sim.run(layers, options);
        benchmark::DoNotOptimize(result.total_energy.total());
    }
}
BENCHMARK(BM_SimulatorFullVgg);

void BM_SimulatorMapperOff(benchmark::State& state) {
    const auto layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    auto options = hw::pipelined_options(hw::Scheme::mime);
    options.optimize_tiling = false;
    for (auto _ : state) {
        const auto result = sim.run(layers, options);
        benchmark::DoNotOptimize(result.total_energy.total());
    }
}
BENCHMARK(BM_SimulatorMapperOff);

}  // namespace
