// Load-driven throughput bench for the serving runtime.
//
// Every scenario drives its backend purely through the unified
// InferenceService client API — the same submit(task, image, options) /
// RequestTicket / Outcome surface for a lone InferenceServer and a
// sharded ServerPool — so the numbers compare backends, not client
// plumbing.
//
// Part 1 replays synthetic mixed-task arrival streams (uniform,
// skewed/Zipf, bursty) against an InferenceServer under each batching
// policy and reports requests/sec, p50/p95 latency, mean batch size and
// threshold swaps per request. The contrast to watch: under interleaved
// traffic the fifo policy dispatches tiny batches and swaps thresholds
// almost every batch, while task_grouped amortizes both — the
// serving-time payoff of MIME's cheap task switch.
//
// Part 2 sweeps the ServerPool: pool sizes {1, 2, 4} x {round_robin,
// task_affinity} replaying the skewed stream closed-loop from 4 client
// threads. Each replica models an attached accelerator via
// ServerConfig::simulated_service_time (4x one measured forward, so
// dispatch-level parallelism is visible even when one CPU core runs all
// the functional forwards). The contrasts to watch: aggregate req/s
// rising with pool size, and task_affinity holding a higher
// threshold-cache hit rate than round_robin because each task's
// thresholds hydrate on exactly one replica.
//
// Part 3 is the mixed-priority scenario: one pool, closed-loop load
// where a minority of requests are Priority::interactive (generous
// deadline) and the rest Priority::batch (tight deadline). Interactive
// lane precedence in the batcher holds interactive p95 near the
// unloaded service time while batch traffic absorbs the queueing —
// and sheds stale work as deadline_exceeded instead of serving it late.
//
// Part 4 is the deadline-feasibility A/B: the same mixed-deadline flood
// against a 2-replica pool with heuristic scheduling (load = request
// counts, deadlines enforced only on expiry) vs cost-model scheduling
// (predicted-microsecond loads, predictive shedding, join-feasible
// batches). The contrast to watch: the all-in deadline miss rate
// (expired + served-past-deadline) drops at equal or better goodput.
//
// Part 5 steps the load on an autoscaled pool (min 1, max 4 replicas):
// a closed-loop burst must grow the active set with predicted backlog,
// and the idle tail must shrink it back to min.
//
// Environment knobs:
//   MIME_SERVE_REQUESTS      requests per stream (default 150)
//   MIME_SERVE_TASKS         number of child tasks (default 4)
//   MIME_SERVE_INTERARRIVAL  mean arrival gap in us (default 200)
//   MIME_SERVE_POOL_REQUESTS requests per pool-sweep run (default 240)
//   MIME_SERVE_SIM_US        per-batch simulated accelerator service
//                            time in us (default: 4x measured forward)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/table.h"
#include "core/multitask.h"
#include "core/threshold_mask.h"
#include "obs/export.h"
#include "serve/inference_server.h"
#include "serve/load_gen.h"
#include "serve/server_pool.h"
#include "serve/service.h"
#include "tensor/tensor_ops.h"

using namespace mime;

namespace {

std::int64_t env_int(const char* name, std::int64_t fallback) {
    const char* value = std::getenv(name);
    return value != nullptr ? std::atoll(value) : fallback;
}

serve::ThresholdCache::Loader make_loader(
    const std::vector<core::TaskAdaptation>& adaptations) {
    return [&adaptations](const std::string& name) {
        for (const core::TaskAdaptation& adaptation : adaptations) {
            if (adaptation.name == name) {
                return adaptation;
            }
        }
        throw check_error("name", __FILE__, __LINE__,
                          "unknown task " + name);
    };
}

std::vector<Tensor> make_images(std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Tensor> images;
    images.reserve(8);
    for (int i = 0; i < 8; ++i) {
        images.push_back(Tensor::randn({3, 32, 32}, rng));
    }
    return images;
}

/// Open-loop replay through the unified API: submit each request at its
/// arrival offset, then wait out every ticket.
void drive_open_loop(serve::InferenceService& service,
                     const std::vector<core::TaskAdaptation>& adaptations,
                     const std::vector<serve::ArrivalEvent>& events,
                     const std::vector<Tensor>& images) {
    const auto start = serve::Clock::now();
    std::vector<serve::RequestTicket> tickets;
    tickets.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        const serve::ArrivalEvent& event = events[i];
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(
                        static_cast<std::int64_t>(event.offset_us)));
        tickets.push_back(service.submit(
            adaptations[static_cast<std::size_t>(event.task)].name,
            images[i % images.size()], {}));
    }
    for (serve::RequestTicket& ticket : tickets) {
        ticket.wait();
    }
    service.drain();
}

serve::ServerStats replay(
    core::MimeNetwork& network,
    const std::vector<core::TaskAdaptation>& adaptations,
    const std::vector<serve::ArrivalEvent>& events,
    serve::BatchingPolicy policy) {
    serve::ServerConfig config;
    config.batcher.policy = policy;
    config.batcher.max_batch_size = 8;
    config.batcher.max_wait = std::chrono::microseconds(2000);
    config.cache_capacity = adaptations.size();
    config.worker_threads = 1;
    serve::InferenceServer server(network, make_loader(adaptations),
                                  config);

    const std::vector<Tensor> images = make_images(23);
    drive_open_loop(server, adaptations, events, images);
    serve::ServerStats stats = server.stats();
    server.stop();
    return stats;
}

/// Closed-loop flood through the unified API: `client_count` threads
/// partition the stream by index and submit as fast as admission lets
/// them, so throughput measures the service rate rather than arrival
/// pacing. Per-event SubmitOptions come from `make_options` (priority /
/// deadline mixes); per-lane terminal statuses are tallied from the
/// outcomes.
struct ClosedLoopTally {
    std::atomic<std::int64_t> ok_interactive{0};
    std::atomic<std::int64_t> ok_batch{0};
    std::atomic<std::int64_t> expired_interactive{0};
    std::atomic<std::int64_t> expired_batch{0};
    /// Served ok but past the request's own deadline — capacity the
    /// server burned on an answer the client no longer wanted. A
    /// subset of ok_*; goodput = ok - late.
    std::atomic<std::int64_t> late_interactive{0};
    std::atomic<std::int64_t> late_batch{0};

    std::int64_t ok() const { return ok_interactive + ok_batch; }
    std::int64_t expired() const {
        return expired_interactive + expired_batch;
    }
    std::int64_t late() const { return late_interactive + late_batch; }
    /// Deadline misses all-in: expired before serving or served late.
    std::int64_t missed() const { return expired() + late(); }
};

template <typename MakeOptions>
void drive_closed_loop(serve::InferenceService& service,
                       const std::vector<core::TaskAdaptation>& adaptations,
                       const std::vector<serve::ArrivalEvent>& events,
                       const std::vector<Tensor>& images,
                       std::size_t client_count, MakeOptions make_options,
                       ClosedLoopTally* tally) {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < client_count; ++c) {
        clients.emplace_back([&, c] {
            std::vector<serve::Priority> priorities;
            std::vector<std::chrono::microseconds> deadlines;
            std::vector<serve::RequestTicket> tickets;
            for (std::size_t i = c; i < events.size(); i += client_count) {
                serve::SubmitOptions options = make_options(events[i]);
                priorities.push_back(options.priority);
                deadlines.push_back(options.deadline);
                tickets.push_back(service.submit(
                    adaptations[static_cast<std::size_t>(events[i].task)]
                        .name,
                    images[i % images.size()], std::move(options)));
            }
            for (std::size_t i = 0; i < tickets.size(); ++i) {
                const serve::Outcome<serve::InferenceResult> outcome =
                    tickets[i].wait();
                if (tally == nullptr) {
                    continue;
                }
                const bool interactive =
                    priorities[i] == serve::Priority::interactive;
                if (outcome.ok()) {
                    (interactive ? tally->ok_interactive : tally->ok_batch)
                        .fetch_add(1);
                    if (deadlines[i].count() > 0 &&
                        outcome.value().latency_us >
                            static_cast<double>(deadlines[i].count())) {
                        (interactive ? tally->late_interactive
                                     : tally->late_batch)
                            .fetch_add(1);
                    }
                } else if (outcome.status() ==
                           serve::ServeStatus::deadline_exceeded) {
                    (interactive ? tally->expired_interactive
                                 : tally->expired_batch)
                        .fetch_add(1);
                }
            }
        });
    }
    for (std::thread& client : clients) {
        client.join();
    }
    service.drain();
}

/// Structurally prunes every site's thresholds to 1/4 channel density,
/// with the live residue class rotated per task so different tasks keep
/// different channels (the MIME child-task picture: each task's
/// thresholds carve its own subnetwork out of W_parent).
void prune_channels(core::MimeNetwork& network, std::int64_t live_rem) {
    for (std::int64_t s = 0; s < network.site_count(); ++s) {
        core::ThresholdMask& mask = network.site(s).mask();
        Tensor& t = mask.thresholds().value;
        const std::int64_t channels = mask.activation_shape().dim(0);
        const std::int64_t extent =
            mask.activation_shape().numel() / channels;
        for (std::int64_t c = 0; c < channels; ++c) {
            const float value = (c % 4 == live_rem % 4)
                                    ? 0.05f
                                    : core::kPrunedThreshold;
            for (std::int64_t i = 0; i < extent; ++i) {
                t.data()[c * extent + i] = value;
            }
        }
        mask.mark_thresholds_dirty();
    }
}

/// One scenario's SLO section for BENCH_serve.json: per-lane tail
/// quantiles plus the miss/shed rates an operator would alert on.
bench::Json lane_slo(const serve::PriorityLaneStats& lane,
                     std::int64_t expired) {
    bench::Json json;
    json.set("completed", lane.completed);
    json.set("p50_us", lane.p50_latency_us);
    json.set("p95_us", lane.p95_latency_us);
    json.set("p99_us", lane.p99_latency_us);
    json.set("p999_us", lane.p999_latency_us);
    json.set("deadline_expired", expired);
    const std::int64_t finished = lane.completed + expired;
    json.set("deadline_miss_rate",
             finished > 0 ? static_cast<double>(expired) /
                                static_cast<double>(finished)
                          : 0.0);
    return json;
}

/// Closed-loop A/B run for sparse vs dense planned execution (and,
/// with `quantized`, int8 vs float). No simulated accelerator: the run
/// is forward-bound on purpose, so req/s measures what row compaction
/// (or int8 arithmetic) saves in the functional forward. When
/// `metrics_json` / `prom_text` are non-null the run also exports the
/// server's metrics registry through both exporters.
serve::ServerStats replay_sparse_ab(
    core::MimeNetwork& network,
    const std::vector<core::TaskAdaptation>& adaptations,
    const std::vector<serve::ArrivalEvent>& events, bool sparse,
    bool quantized = false, bench::Json* metrics_json = nullptr,
    std::string* prom_text = nullptr) {
    serve::ServerConfig config;
    config.batcher.policy = serve::BatchingPolicy::task_grouped;
    config.batcher.max_batch_size = 8;
    config.batcher.max_wait = std::chrono::microseconds(2000);
    config.cache_capacity = adaptations.size();
    config.worker_threads = 1;
    config.sparse_execution = sparse;
    config.quantized_execution = quantized;
    serve::InferenceServer server(network, make_loader(adaptations),
                                  config);

    const std::vector<Tensor> images = make_images(41);
    drive_closed_loop(
        server, adaptations, events, images, 4,
        [](const serve::ArrivalEvent&) { return serve::SubmitOptions{}; },
        nullptr);
    serve::ServerStats stats = server.stats();
    if (metrics_json != nullptr || prom_text != nullptr) {
        const std::vector<obs::MetricSnapshot> snapshot =
            server.metrics().snapshot();
        if (metrics_json != nullptr) {
            *metrics_json = obs::metrics_to_json(snapshot);
        }
        if (prom_text != nullptr) {
            *prom_text = obs::metrics_to_prometheus(snapshot);
        }
    }
    server.stop();
    return stats;
}

serve::PoolStats replay_pool(
    core::MimeNetwork& network,
    const std::vector<core::TaskAdaptation>& adaptations,
    const std::vector<serve::ArrivalEvent>& events,
    std::size_t pool_size, serve::RoutingPolicy routing,
    std::chrono::microseconds simulated_service) {
    serve::PoolConfig config;
    config.replica_count = pool_size;
    config.routing = routing;
    config.admission = serve::AdmissionMode::block;
    config.max_pending = pool_size * 16;
    config.server.batcher.policy = serve::BatchingPolicy::task_grouped;
    config.server.batcher.max_batch_size = 8;
    config.server.batcher.max_wait = std::chrono::microseconds(2000);
    // Deliberately smaller than the task count: capacity pressure is
    // what separates affinity (each replica hosts few tasks) from
    // round_robin (every replica churns through all of them).
    config.server.cache_capacity = 3;
    config.server.worker_threads = 1;
    config.server.simulated_service_time = simulated_service;
    serve::ServerPool pool(network, make_loader(adaptations), config);

    const std::vector<Tensor> images = make_images(29);
    drive_closed_loop(
        pool, adaptations, events, images, 4,
        [](const serve::ArrivalEvent&) { return serve::SubmitOptions{}; },
        nullptr);
    serve::PoolStats stats = pool.stats();
    pool.stop();
    return stats;
}

}  // namespace

int main() {
    bench::print_banner(
        "Serving throughput — mixed-task streams vs batching policy",
        "task-grouped batching amortizes threshold swaps that fifo pays "
        "per task change");

    const std::int64_t request_count = env_int("MIME_SERVE_REQUESTS", 150);
    const std::int64_t task_count = env_int("MIME_SERVE_TASKS", 4);
    const double interarrival_us =
        static_cast<double>(env_int("MIME_SERVE_INTERARRIVAL", 200));

    core::MimeNetworkConfig network_config;
    network_config.vgg.input_size = 32;
    network_config.vgg.width_scale = 0.0625;
    network_config.vgg.num_classes = 10;
    network_config.seed = 5;
    core::MimeNetwork network(network_config);
    network.set_training(false);
    network.set_mode(core::ActivationMode::threshold);

    std::vector<core::TaskAdaptation> adaptations;
    for (std::int64_t t = 0; t < task_count; ++t) {
        network.reset_thresholds(0.05f +
                                 0.15f * static_cast<float>(t));
        adaptations.push_back(core::capture_adaptation(
            network, "task" + std::to_string(t), 10));
    }

    bench::Json serve_json;
    serve_json.set("bench", "serve_throughput");
    std::vector<bench::Json> policy_rows;

    Table table({"traffic", "policy", "req/s", "p50 us", "p95 us",
                 "mean batch", "swaps/req"});
    double fifo_rps_sum = 0.0;
    double grouped_rps_sum = 0.0;

    for (const serve::ArrivalPattern pattern :
         {serve::ArrivalPattern::uniform, serve::ArrivalPattern::skewed,
          serve::ArrivalPattern::bursty}) {
        serve::LoadSpec spec;
        spec.pattern = pattern;
        spec.task_count = task_count;
        spec.request_count = request_count;
        spec.mean_interarrival_us = interarrival_us;
        spec.seed = 31;
        const auto events = serve::generate_arrivals(spec);

        for (const serve::BatchingPolicy policy :
             {serve::BatchingPolicy::fifo,
              serve::BatchingPolicy::task_grouped}) {
            const serve::ServerStats s =
                replay(network, adaptations, events, policy);
            const double swaps_per_request =
                s.requests_served > 0
                    ? static_cast<double>(s.threshold_swaps) /
                          static_cast<double>(s.requests_served)
                    : 0.0;
            table.add_row({serve::to_string(pattern),
                           serve::to_string(policy),
                           Table::num(s.throughput_rps, 1),
                           Table::num(s.p50_latency_us, 0),
                           Table::num(s.p95_latency_us, 0),
                           Table::num(s.mean_batch_size, 2),
                           Table::num(swaps_per_request, 3)});
            if (policy == serve::BatchingPolicy::fifo) {
                fifo_rps_sum += s.throughput_rps;
            } else {
                grouped_rps_sum += s.throughput_rps;
            }
            bench::Json row;
            row.set("traffic", serve::to_string(pattern));
            row.set("policy", serve::to_string(policy));
            row.set("req_per_s", s.throughput_rps);
            row.set("p50_us", s.p50_latency_us);
            row.set("p95_us", s.p95_latency_us);
            row.set("p99_us", s.p99_latency_us);
            row.set("p999_us", s.p999_latency_us);
            policy_rows.push_back(std::move(row));
        }
    }
    table.print();
    serve_json.set("policy_replay", std::move(policy_rows));

    bench::print_claim(
        "task-grouped vs fifo throughput (mean over traffic mixes)",
        ">= 1x (amortized swaps)",
        Table::ratio(grouped_rps_sum / fifo_rps_sum));

    // -----------------------------------------------------------------------
    // Sparse execution A/B: row compaction on structurally pruned tasks
    // -----------------------------------------------------------------------
    std::printf("\n");
    bench::print_banner(
        "Sparse execution A/B — row-compacted planned forwards, skewed "
        "stream",
        "structural pruning (75% dead channels) converts to serving "
        "throughput when the executor skips dead rows");

    // Child tasks whose thresholds structurally prune 3/4 of every
    // site's channels, each task keeping a different residue class.
    std::vector<core::TaskAdaptation> pruned_adaptations;
    for (std::int64_t t = 0; t < task_count; ++t) {
        prune_channels(network, t);
        pruned_adaptations.push_back(core::capture_adaptation(
            network, "pruned" + std::to_string(t), 10));
    }

    serve::LoadSpec sparse_spec;
    sparse_spec.pattern = serve::ArrivalPattern::skewed;
    sparse_spec.task_count = task_count;
    sparse_spec.request_count = env_int("MIME_SERVE_POOL_REQUESTS", 240);
    sparse_spec.mean_interarrival_us = 1.0;  // offsets unused: closed loop
    sparse_spec.seed = 59;
    const auto sparse_events = serve::generate_arrivals(sparse_spec);

    const serve::ServerStats dense_stats = replay_sparse_ab(
        network, pruned_adaptations, sparse_events, /*sparse=*/false);
    // The sparse run doubles as the exporter demonstration: its registry
    // snapshot lands in BENCH_serve.json (JSON exporter) and
    // BENCH_serve.prom (Prometheus text exposition).
    bench::Json sparse_metrics;
    std::string sparse_prom;
    const serve::ServerStats sparse_stats = replay_sparse_ab(
        network, pruned_adaptations, sparse_events,
        /*sparse=*/true, /*quantized=*/false, &sparse_metrics,
        &sparse_prom);

    Table sparse_table({"executor", "req/s", "p50 us", "p95 us",
                        "sparse hits", "skipped MACs"});
    sparse_table.add_row(
        {"dense planned", Table::num(dense_stats.throughput_rps, 1),
         Table::num(dense_stats.p50_latency_us, 0),
         Table::num(dense_stats.p95_latency_us, 0),
         std::to_string(dense_stats.sparse_path_hits),
         Table::num(dense_stats.skipped_mac_fraction, 4)});
    sparse_table.add_row(
        {"sparse planned", Table::num(sparse_stats.throughput_rps, 1),
         Table::num(sparse_stats.p50_latency_us, 0),
         Table::num(sparse_stats.p95_latency_us, 0),
         std::to_string(sparse_stats.sparse_path_hits),
         Table::num(sparse_stats.skipped_mac_fraction, 4)});
    sparse_table.print();

    const double sparse_speedup =
        dense_stats.throughput_rps > 0.0
            ? sparse_stats.throughput_rps / dense_stats.throughput_rps
            : 0.0;
    bench::print_claim("sparse vs dense planned req/s (skewed, pruned)",
                       ">= 1.3x", Table::ratio(sparse_speedup));
    bench::print_claim("skipped-MAC fraction (sparse run)",
                       "~0.5-0.9 @ 75% channel pruning",
                       Table::num(sparse_stats.skipped_mac_fraction, 3));

    {
        bench::Json ab;
        ab.set("dense_req_per_s", dense_stats.throughput_rps);
        ab.set("sparse_req_per_s", sparse_stats.throughput_rps);
        ab.set("speedup", sparse_speedup);
        ab.set("dense_p50_us", dense_stats.p50_latency_us);
        ab.set("dense_p95_us", dense_stats.p95_latency_us);
        ab.set("sparse_p50_us", sparse_stats.p50_latency_us);
        ab.set("sparse_p95_us", sparse_stats.p95_latency_us);
        ab.set("sparse_p99_us", sparse_stats.p99_latency_us);
        ab.set("sparse_p999_us", sparse_stats.p999_latency_us);
        ab.set("sparse_path_hits", sparse_stats.sparse_path_hits);
        ab.set("skipped_mac_fraction",
               sparse_stats.skipped_mac_fraction);
        serve_json.set("sparse_ab", std::move(ab));
        serve_json.set("sparse_run_metrics", std::move(sparse_metrics));
        bench::write_text_file("BENCH_serve.prom", sparse_prom);
    }

    // -----------------------------------------------------------------------
    // Quantized execution A/B: int8 planned forwards vs float sparse
    // -----------------------------------------------------------------------
    std::printf("\n");
    bench::print_banner(
        "Quantized execution A/B — int8 planned forwards, skewed stream",
        "per-channel int8 weights + dynamic activation quantization on "
        "top of the same row-compacted sparse plans");

    // The float side reuses sparse_stats above: same network, same
    // pruned tasks, same arrival stream — the only delta is the int8
    // executor.
    const serve::ServerStats int8_stats = replay_sparse_ab(
        network, pruned_adaptations, sparse_events,
        /*sparse=*/true, /*quantized=*/true);

    Table int8_table({"executor", "req/s", "p50 us", "p95 us",
                      "quantized hits", "max weight rel err"});
    int8_table.add_row(
        {"float sparse", Table::num(sparse_stats.throughput_rps, 1),
         Table::num(sparse_stats.p50_latency_us, 0),
         Table::num(sparse_stats.p95_latency_us, 0),
         std::to_string(sparse_stats.quantized_path_hits), "-"});
    int8_table.add_row(
        {"int8 sparse", Table::num(int8_stats.throughput_rps, 1),
         Table::num(int8_stats.p50_latency_us, 0),
         Table::num(int8_stats.p95_latency_us, 0),
         std::to_string(int8_stats.quantized_path_hits),
         Table::num(int8_stats.quantized_weight_max_rel_error, 5)});
    int8_table.print();

    const double int8_speedup =
        sparse_stats.throughput_rps > 0.0
            ? int8_stats.throughput_rps / sparse_stats.throughput_rps
            : 0.0;
    bench::print_claim(
        "int8 vs float sparse planned req/s (skewed, pruned)", ">= 1.1x",
        Table::ratio(int8_speedup));
    bench::print_claim("quantized weight max rel error",
                       "< 0.0079 (half-LSB of int8)",
                       Table::num(
                           int8_stats.quantized_weight_max_rel_error, 5));

    {
        bench::Json ab;
        ab.set("float_sparse_req_per_s", sparse_stats.throughput_rps);
        ab.set("int8_req_per_s", int8_stats.throughput_rps);
        ab.set("speedup", int8_speedup);
        ab.set("int8_p50_us", int8_stats.p50_latency_us);
        ab.set("int8_p95_us", int8_stats.p95_latency_us);
        ab.set("int8_p99_us", int8_stats.p99_latency_us);
        ab.set("quantized_path_hits", int8_stats.quantized_path_hits);
        ab.set("quantized_weight_max_rel_error",
               int8_stats.quantized_weight_max_rel_error);
        ab.set("sparse_path_hits", int8_stats.sparse_path_hits);
        ab.set("skipped_mac_fraction", int8_stats.skipped_mac_fraction);
        serve_json.set("quantized_ab", std::move(ab));
    }

    // -----------------------------------------------------------------------
    // ServerPool sweep: pool size x routing policy on the skewed stream
    // -----------------------------------------------------------------------
    std::printf("\n");
    bench::print_banner(
        "Server pool sweep — replicas x routing on the skewed stream",
        "parallel replicas multiply throughput; task_affinity keeps each "
        "task's thresholds hot on one replica");

    // The pool sweep wants real sharding pressure: at least 8 tasks
    // against per-replica caches of 3.
    const std::int64_t pool_task_count = std::max<std::int64_t>(
        8, task_count);
    for (std::int64_t t = task_count; t < pool_task_count; ++t) {
        network.reset_thresholds(0.05f + 0.15f * static_cast<float>(t));
        adaptations.push_back(core::capture_adaptation(
            network, "task" + std::to_string(t), 10));
    }

    serve::LoadSpec pool_spec;
    pool_spec.pattern = serve::ArrivalPattern::skewed;
    pool_spec.task_count = pool_task_count;
    pool_spec.request_count = env_int("MIME_SERVE_POOL_REQUESTS", 240);
    pool_spec.mean_interarrival_us = 1.0;  // offsets unused: closed loop
    pool_spec.seed = 47;
    const auto pool_events = serve::generate_arrivals(pool_spec);

    // Calibrate the simulated accelerator: 4x one measured max-size
    // forward, so service time (which replicas overlap) dominates the
    // functional CPU forward (which one host core serializes).
    std::chrono::microseconds simulated_service(
        env_int("MIME_SERVE_SIM_US", 0));
    {
        Rng rng(7);
        std::vector<Tensor> batch;
        for (int i = 0; i < 8; ++i) {
            batch.push_back(Tensor::randn({3, 32, 32}, rng));
        }
        network.forward(stack(batch));  // warm up
        const auto started = serve::Clock::now();
        network.forward(stack(batch));
        const auto forward_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                serve::Clock::now() - started);
        if (simulated_service.count() == 0) {
            simulated_service = 4 * forward_us;
        }
        std::printf("forward(batch=8): %lld us; simulated service: %lld us\n",
                    static_cast<long long>(forward_us.count()),
                    static_cast<long long>(simulated_service.count()));
    }

    std::vector<bench::Json> pool_rows;
    Table pool_table({"pool", "routing", "req/s", "speedup", "p50 us",
                      "p95 us", "hit rate", "swaps/req", "ws peak/rep B",
                      "ws peak pool B"});
    double base_rps[2] = {0.0, 0.0};
    double pool4_rps[2] = {0.0, 0.0};
    double pool4_hit_rate[2] = {0.0, 0.0};
    for (const std::size_t pool_size : {1u, 2u, 4u}) {
        for (const serve::RoutingPolicy routing :
             {serve::RoutingPolicy::round_robin,
              serve::RoutingPolicy::task_affinity}) {
            const serve::PoolStats stats =
                replay_pool(network, adaptations, pool_events, pool_size,
                            routing, simulated_service);
            const std::size_t p =
                routing == serve::RoutingPolicy::round_robin ? 0 : 1;
            if (pool_size == 1) {
                base_rps[p] = stats.throughput_rps;
            }
            if (pool_size == 4) {
                pool4_rps[p] = stats.throughput_rps;
                pool4_hit_rate[p] = stats.cache_hit_rate;
            }
            const double swaps_per_request =
                stats.requests_served > 0
                    ? static_cast<double>(stats.threshold_swaps) /
                          static_cast<double>(stats.requests_served)
                    : 0.0;
            pool_table.add_row(
                {std::to_string(pool_size), serve::to_string(routing),
                 Table::num(stats.throughput_rps, 1),
                 Table::ratio(base_rps[p] > 0.0
                                  ? stats.throughput_rps / base_rps[p]
                                  : 0.0),
                 Table::num(stats.p50_latency_us, 0),
                 Table::num(stats.p95_latency_us, 0),
                 Table::num(stats.cache_hit_rate, 3),
                 Table::num(swaps_per_request, 3),
                 std::to_string(stats.workspace_peak_bytes /
                                static_cast<std::int64_t>(pool_size)),
                 std::to_string(stats.workspace_peak_bytes)});
            bench::Json row;
            row.set("pool_size", static_cast<std::int64_t>(pool_size));
            row.set("routing", serve::to_string(routing));
            row.set("req_per_s", stats.throughput_rps);
            row.set("p50_us", stats.p50_latency_us);
            row.set("p95_us", stats.p95_latency_us);
            row.set("p99_us", stats.p99_latency_us);
            row.set("p999_us", stats.p999_latency_us);
            row.set("cache_hit_rate", stats.cache_hit_rate);
            row.set("skipped_mac_fraction", stats.skipped_mac_fraction);
            pool_rows.push_back(std::move(row));
        }
    }
    pool_table.print();
    serve_json.set("pool_sweep", std::move(pool_rows));

    bench::print_claim("pool 4 vs 1 throughput (skewed, task_affinity)",
                       ">= 1.5x (parallel replicas)",
                       Table::ratio(base_rps[1] > 0.0
                                        ? pool4_rps[1] / base_rps[1]
                                        : 0.0));
    bench::print_claim("pool 4 vs 1 throughput (skewed, round_robin)",
                       ">= 1.5x (parallel replicas)",
                       Table::ratio(base_rps[0] > 0.0
                                        ? pool4_rps[0] / base_rps[0]
                                        : 0.0));
    bench::print_claim(
        "task_affinity vs round_robin cache hit rate (pool 4)",
        "affinity higher (one home replica per task)",
        Table::num(pool4_hit_rate[1], 3) + " vs " +
            Table::num(pool4_hit_rate[0], 3));

    // -----------------------------------------------------------------------
    // Mixed-priority scenario: interactive lane held under batch load
    // -----------------------------------------------------------------------
    std::printf("\n");
    bench::print_banner(
        "Mixed-priority serving — interactive vs batch lanes under load",
        "interactive precedence holds its p95 while deadline-bearing "
        "batch traffic absorbs the queueing");

    serve::LoadSpec mixed_spec = pool_spec;
    mixed_spec.interactive_fraction = 0.25;
    mixed_spec.seed = 53;
    const auto mixed_events = serve::generate_arrivals(mixed_spec);

    serve::PoolConfig mixed_config;
    mixed_config.replica_count = 2;
    mixed_config.routing = serve::RoutingPolicy::task_affinity;
    mixed_config.admission = serve::AdmissionMode::block;
    mixed_config.max_pending = 32;
    mixed_config.server.batcher.policy =
        serve::BatchingPolicy::task_grouped;
    mixed_config.server.batcher.max_batch_size = 8;
    mixed_config.server.batcher.max_wait =
        std::chrono::microseconds(2000);
    mixed_config.server.cache_capacity = 3;
    mixed_config.server.worker_threads = 1;
    mixed_config.server.simulated_service_time = simulated_service;
    serve::ServerPool mixed_pool(network, make_loader(adaptations),
                                 mixed_config);
    serve::InferenceService& mixed_service = mixed_pool;

    // Batch traffic carries a deadline a queued request can miss under
    // the closed-loop flood; interactive deadlines are generous.
    const auto batch_deadline = std::chrono::duration_cast<
        std::chrono::microseconds>(8 * simulated_service);
    const auto interactive_deadline = std::chrono::seconds(2);
    const std::vector<Tensor> mixed_images = make_images(37);
    ClosedLoopTally tally;
    drive_closed_loop(
        mixed_service, adaptations, mixed_events, mixed_images, 4,
        [&](const serve::ArrivalEvent& event) {
            serve::SubmitOptions options;
            options.priority = event.priority;
            options.deadline = event.priority == serve::Priority::batch
                                   ? batch_deadline
                                   : std::chrono::duration_cast<
                                         std::chrono::microseconds>(
                                         interactive_deadline);
            return options;
        },
        &tally);
    const serve::ServiceStats mixed = mixed_service.service_stats();
    mixed_service.stop();

    Table mixed_table({"lane", "submitted", "served ok", "p95 us",
                       "deadline expired"});
    mixed_table.add_row(
        {"interactive",
         std::to_string(tally.ok_interactive.load() +
                        tally.expired_interactive.load()),
         std::to_string(mixed.interactive.completed),
         Table::num(mixed.interactive.p95_latency_us, 0),
         std::to_string(tally.expired_interactive.load())});
    mixed_table.add_row(
        {"batch",
         std::to_string(tally.ok_batch.load() +
                        tally.expired_batch.load()),
         std::to_string(mixed.batch.completed),
         Table::num(mixed.batch.p95_latency_us, 0),
         std::to_string(tally.expired_batch.load())});
    mixed_table.print();
    std::printf("deadline_expired total: %lld, cancelled: %lld, "
                "shed: %lld\n",
                static_cast<long long>(mixed.deadline_expired),
                static_cast<long long>(mixed.cancelled),
                static_cast<long long>(mixed.shed));

    bench::print_claim(
        "interactive vs batch p95 under mixed load",
        "interactive lower (lane precedence)",
        Table::num(mixed.interactive.p95_latency_us, 0) + " vs " +
            Table::num(mixed.batch.p95_latency_us, 0) + " us");

    // The per-scenario SLO section: tail quantiles per lane plus the
    // miss/shed rates a dashboard alerts on.
    {
        bench::Json slo;
        slo.set("interactive",
                lane_slo(mixed.interactive, tally.expired_interactive.load()));
        slo.set("batch", lane_slo(mixed.batch, tally.expired_batch.load()));
        slo.set("deadline_expired_total", mixed.deadline_expired);
        const std::int64_t finished =
            mixed.interactive.completed + mixed.batch.completed +
            mixed.deadline_expired;
        slo.set("deadline_miss_rate",
                finished > 0 ? static_cast<double>(mixed.deadline_expired) /
                                   static_cast<double>(finished)
                             : 0.0);
        slo.set("shed", mixed.shed);
        const std::int64_t offered = mixed.submitted + mixed.shed;
        slo.set("shed_rate",
                offered > 0 ? static_cast<double>(mixed.shed) /
                                  static_cast<double>(offered)
                            : 0.0);
        serve_json.set("mixed_priority_slo", std::move(slo));
    }

    // -----------------------------------------------------------------------
    // Deadline-feasibility A/B: heuristic vs cost-model scheduling
    // -----------------------------------------------------------------------
    std::printf("\n");
    bench::print_banner(
        "Deadline feasibility A/B — heuristic vs cost-model scheduling",
        "predictive shedding refuses work whose deadline cannot be met "
        "and keeps batches feasible for their members");

    serve::LoadSpec feas_spec = pool_spec;
    feas_spec.interactive_fraction = 0.25;
    feas_spec.seed = 61;
    const auto feas_events = serve::generate_arrivals(feas_spec);
    const std::vector<Tensor> feas_images = make_images(43);
    // Tight enough that the closed-loop flood queues past it, loose
    // enough that an uncontended batch fits: the regime where admitting
    // doomed work costs feasible work its deadline.
    const auto feas_deadline = std::chrono::duration_cast<
        std::chrono::microseconds>(4 * simulated_service);

    const auto replay_feasibility = [&](bool cost_aware,
                                        ClosedLoopTally* tally) {
        serve::PoolConfig config;
        config.replica_count = 2;
        config.routing = serve::RoutingPolicy::least_loaded;
        config.admission = serve::AdmissionMode::block;
        config.max_pending = 32;
        config.cost_aware_scheduling = cost_aware;
        config.server.batcher.policy = serve::BatchingPolicy::task_grouped;
        config.server.batcher.max_batch_size = 8;
        config.server.batcher.max_wait = std::chrono::microseconds(2000);
        config.server.cache_capacity = 3;
        config.server.worker_threads = 1;
        config.server.simulated_service_time = simulated_service;
        serve::ServerPool pool(network, make_loader(adaptations), config);
        drive_closed_loop(
            pool, adaptations, feas_events, feas_images, 4,
            [&](const serve::ArrivalEvent& event) {
                serve::SubmitOptions options;
                options.priority = event.priority;
                options.deadline =
                    event.priority == serve::Priority::batch
                        ? feas_deadline
                        : std::chrono::duration_cast<
                              std::chrono::microseconds>(
                              std::chrono::seconds(2));
                return options;
            },
            tally);
        serve::PoolStats stats = pool.stats();
        pool.stop();
        return stats;
    };

    ClosedLoopTally heuristic_tally;
    const serve::PoolStats heuristic_stats =
        replay_feasibility(/*cost_aware=*/false, &heuristic_tally);
    ClosedLoopTally cost_tally;
    const serve::PoolStats cost_stats =
        replay_feasibility(/*cost_aware=*/true, &cost_tally);

    const auto miss_rate = [&](const ClosedLoopTally& tally) {
        const std::int64_t finished = tally.ok() + tally.expired();
        return finished > 0
                   ? static_cast<double>(tally.missed()) /
                         static_cast<double>(finished)
                   : 0.0;
    };
    const auto goodput_rps = [](const serve::PoolStats& stats,
                                const ClosedLoopTally& tally) {
        // throughput_rps counts every completion; scale to the ones
        // that were both ok and on time.
        return stats.requests_completed > 0
                   ? stats.throughput_rps *
                         static_cast<double>(tally.ok() - tally.late()) /
                         static_cast<double>(stats.requests_completed)
                   : 0.0;
    };

    Table feas_table({"scheduler", "req/s", "goodput/s", "miss rate",
                      "served late", "infeasible shed", "pred err"});
    feas_table.add_row(
        {"heuristic", Table::num(heuristic_stats.throughput_rps, 1),
         Table::num(goodput_rps(heuristic_stats, heuristic_tally), 1),
         Table::num(miss_rate(heuristic_tally), 3),
         std::to_string(heuristic_tally.late()),
         std::to_string(heuristic_stats.cost_infeasible_shed), "-"});
    feas_table.add_row(
        {"cost-model", Table::num(cost_stats.throughput_rps, 1),
         Table::num(goodput_rps(cost_stats, cost_tally), 1),
         Table::num(miss_rate(cost_tally), 3),
         std::to_string(cost_tally.late()),
         std::to_string(cost_stats.cost_infeasible_shed),
         Table::num(cost_stats.cost_prediction_error, 3)});
    feas_table.print();

    bench::print_claim(
        "deadline miss rate (expired + served late), cost vs heuristic",
        "cost-model lower (doomed work shed at batch forming)",
        Table::num(miss_rate(cost_tally), 3) + " vs " +
            Table::num(miss_rate(heuristic_tally), 3));
    bench::print_claim(
        "goodput (ok and on time per second), cost vs heuristic",
        "cost-model equal or better",
        Table::num(goodput_rps(cost_stats, cost_tally), 1) + " vs " +
            Table::num(goodput_rps(heuristic_stats, heuristic_tally), 1));

    {
        const auto side = [&](const serve::PoolStats& stats,
                              const ClosedLoopTally& tally) {
            bench::Json json;
            json.set("req_per_s", stats.throughput_rps);
            json.set("goodput_per_s", goodput_rps(stats, tally));
            json.set("deadline_miss_rate", miss_rate(tally));
            json.set("served_ok", tally.ok());
            json.set("served_late", tally.late());
            json.set("deadline_expired", tally.expired());
            json.set("cost_infeasible_shed", stats.cost_infeasible_shed);
            json.set("p95_us", stats.p95_latency_us);
            json.set("p99_us", stats.p99_latency_us);
            return json;
        };
        bench::Json feas;
        feas.set("deadline_us",
                 static_cast<std::int64_t>(feas_deadline.count()));
        feas.set("heuristic", side(heuristic_stats, heuristic_tally));
        bench::Json cost_side = side(cost_stats, cost_tally);
        cost_side.set("cost_prediction_error",
                      cost_stats.cost_prediction_error);
        cost_side.set("cost_calibration_scale",
                      cost_stats.cost_calibration_scale);
        feas.set("cost_model", std::move(cost_side));
        serve_json.set("deadline_feasibility_ab", std::move(feas));
    }

    // -----------------------------------------------------------------------
    // Autoscaler load step: grow under a burst, shrink back when idle
    // -----------------------------------------------------------------------
    std::printf("\n");
    bench::print_banner(
        "Autoscaler load step — replicas follow predicted backlog",
        "a closed-loop burst grows the active set toward max; the idle "
        "tail hands replicas back to min");

    serve::PoolConfig scale_config;
    scale_config.replica_count = 1;  // start at min
    scale_config.routing = serve::RoutingPolicy::least_loaded;
    scale_config.admission = serve::AdmissionMode::block;
    scale_config.max_pending = 32;
    scale_config.autoscaler.enabled = true;
    scale_config.autoscaler.min_replicas = 1;
    scale_config.autoscaler.max_replicas = 4;
    scale_config.autoscaler.interval = std::chrono::milliseconds(5);
    scale_config.autoscaler.grow_backlog_us =
        2.0 * static_cast<double>(simulated_service.count());
    scale_config.autoscaler.shrink_backlog_us =
        0.25 * static_cast<double>(simulated_service.count());
    scale_config.autoscaler.grow_patience = 1;
    scale_config.autoscaler.shrink_patience = 3;
    scale_config.server.batcher.policy = serve::BatchingPolicy::task_grouped;
    scale_config.server.batcher.max_batch_size = 8;
    scale_config.server.batcher.max_wait = std::chrono::microseconds(2000);
    scale_config.server.cache_capacity = 3;
    scale_config.server.worker_threads = 1;
    scale_config.server.simulated_service_time = simulated_service;
    serve::ServerPool scale_pool(network, make_loader(adaptations),
                                 scale_config);

    std::atomic<bool> burst_done{false};
    std::size_t peak_active = scale_pool.active_replicas();
    std::thread active_monitor([&] {
        while (!burst_done.load()) {
            peak_active =
                std::max(peak_active, scale_pool.active_replicas());
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });
    const std::vector<Tensor> scale_images = make_images(53);
    drive_closed_loop(
        scale_pool, adaptations, pool_events, scale_images, 4,
        [](const serve::ArrivalEvent&) { return serve::SubmitOptions{}; },
        nullptr);
    burst_done = true;
    active_monitor.join();

    // Idle tail: the scaler must walk the active set back down.
    std::size_t final_active = scale_pool.active_replicas();
    for (int spin = 0; spin < 2000 && final_active > 1; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        final_active = scale_pool.active_replicas();
    }
    const serve::PoolStats scale_stats = scale_pool.stats();
    scale_pool.stop();

    Table scale_table({"phase", "active", "grows", "shrinks",
                       "budget blocked", "req/s", "p99 us"});
    scale_table.add_row(
        {"burst peak", std::to_string(peak_active),
         std::to_string(scale_stats.autoscale_grows),
         std::to_string(scale_stats.autoscale_shrinks),
         std::to_string(scale_stats.autoscale_budget_blocked),
         Table::num(scale_stats.throughput_rps, 1),
         Table::num(scale_stats.p99_latency_us, 0)});
    scale_table.add_row(
        {"idle tail", std::to_string(final_active), "-", "-", "-", "-",
         "-"});
    scale_table.print();

    bench::print_claim("autoscaler peak active replicas under burst",
                       ">= 2 (grows with predicted backlog)",
                       std::to_string(peak_active));
    bench::print_claim("autoscaler active replicas after idle tail",
                       "1 (shrinks back to min)",
                       std::to_string(final_active));

    {
        bench::Json scale;
        scale.set("peak_active",
                  static_cast<std::int64_t>(peak_active));
        scale.set("final_active",
                  static_cast<std::int64_t>(final_active));
        scale.set("grows", scale_stats.autoscale_grows);
        scale.set("shrinks", scale_stats.autoscale_shrinks);
        scale.set("budget_blocked", scale_stats.autoscale_budget_blocked);
        scale.set("req_per_s", scale_stats.throughput_rps);
        scale.set("p99_us", scale_stats.p99_latency_us);
        scale.set("cost_prediction_error",
                  scale_stats.cost_prediction_error);
        serve_json.set("autoscaler_step", std::move(scale));
    }

    bench::write_json_file("BENCH_serve.json", serve_json);
    return 0;
}
