// Load-driven throughput bench for the serving runtime.
//
// Replays synthetic mixed-task arrival streams (uniform, skewed/Zipf,
// bursty) against an InferenceServer under each batching policy and
// reports requests/sec, p50/p95 latency, mean batch size and threshold
// swaps per request. The contrast to watch: under interleaved traffic
// the fifo policy dispatches tiny batches and swaps thresholds almost
// every batch, while task_grouped amortizes both — the serving-time
// payoff of MIME's cheap task switch.
//
// Environment knobs:
//   MIME_SERVE_REQUESTS      requests per stream (default 150)
//   MIME_SERVE_TASKS         number of child tasks (default 4)
//   MIME_SERVE_INTERARRIVAL  mean arrival gap in us (default 200)
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/check.h"
#include "common/table.h"
#include "core/multitask.h"
#include "serve/inference_server.h"
#include "serve/load_gen.h"

using namespace mime;

namespace {

std::int64_t env_int(const char* name, std::int64_t fallback) {
    const char* value = std::getenv(name);
    return value != nullptr ? std::atoll(value) : fallback;
}

struct RunResult {
    serve::ServerStats stats;
};

RunResult replay(core::MimeNetwork& network,
                 const std::vector<core::TaskAdaptation>& adaptations,
                 const std::vector<serve::ArrivalEvent>& events,
                 serve::BatchingPolicy policy) {
    serve::ServerConfig config;
    config.batcher.policy = policy;
    config.batcher.max_batch_size = 8;
    config.batcher.max_wait = std::chrono::microseconds(2000);
    config.cache_capacity = adaptations.size();
    config.worker_threads = 1;
    serve::InferenceServer server(
        network,
        [&adaptations](const std::string& name) {
            for (const core::TaskAdaptation& adaptation : adaptations) {
                if (adaptation.name == name) {
                    return adaptation;
                }
            }
            throw check_error("name", __FILE__, __LINE__,
                              "unknown task " + name);
        },
        config);

    Rng rng(23);
    std::vector<Tensor> images;
    images.reserve(8);
    for (int i = 0; i < 8; ++i) {
        images.push_back(Tensor::randn({3, 32, 32}, rng));
    }

    // Open-loop replay: submit each request at its arrival offset.
    const auto start = serve::Clock::now();
    std::vector<std::future<serve::InferenceResult>> futures;
    futures.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        const serve::ArrivalEvent& event = events[i];
        std::this_thread::sleep_until(
            start + std::chrono::microseconds(
                        static_cast<std::int64_t>(event.offset_us)));
        futures.push_back(server.submit_async(
            adaptations[static_cast<std::size_t>(event.task)].name,
            images[i % images.size()]));
    }
    for (auto& future : futures) {
        future.get();
    }
    server.drain();
    RunResult result{server.stats()};
    server.stop();
    return result;
}

}  // namespace

int main() {
    bench::print_banner(
        "Serving throughput — mixed-task streams vs batching policy",
        "task-grouped batching amortizes threshold swaps that fifo pays "
        "per task change");

    const std::int64_t request_count = env_int("MIME_SERVE_REQUESTS", 150);
    const std::int64_t task_count = env_int("MIME_SERVE_TASKS", 4);
    const double interarrival_us =
        static_cast<double>(env_int("MIME_SERVE_INTERARRIVAL", 200));

    core::MimeNetworkConfig network_config;
    network_config.vgg.input_size = 32;
    network_config.vgg.width_scale = 0.0625;
    network_config.vgg.num_classes = 10;
    network_config.seed = 5;
    core::MimeNetwork network(network_config);
    network.set_training(false);
    network.set_mode(core::ActivationMode::threshold);

    std::vector<core::TaskAdaptation> adaptations;
    for (std::int64_t t = 0; t < task_count; ++t) {
        network.reset_thresholds(0.05f +
                                 0.15f * static_cast<float>(t));
        adaptations.push_back(core::capture_adaptation(
            network, "task" + std::to_string(t), 10));
    }

    Table table({"traffic", "policy", "req/s", "p50 us", "p95 us",
                 "mean batch", "swaps/req"});
    double fifo_rps_sum = 0.0;
    double grouped_rps_sum = 0.0;

    for (const serve::ArrivalPattern pattern :
         {serve::ArrivalPattern::uniform, serve::ArrivalPattern::skewed,
          serve::ArrivalPattern::bursty}) {
        serve::LoadSpec spec;
        spec.pattern = pattern;
        spec.task_count = task_count;
        spec.request_count = request_count;
        spec.mean_interarrival_us = interarrival_us;
        spec.seed = 31;
        const auto events = serve::generate_arrivals(spec);

        for (const serve::BatchingPolicy policy :
             {serve::BatchingPolicy::fifo,
              serve::BatchingPolicy::task_grouped}) {
            const RunResult run =
                replay(network, adaptations, events, policy);
            const serve::ServerStats& s = run.stats;
            const double swaps_per_request =
                s.requests_completed > 0
                    ? static_cast<double>(s.threshold_swaps) /
                          static_cast<double>(s.requests_completed)
                    : 0.0;
            table.add_row({serve::to_string(pattern),
                           serve::to_string(policy),
                           Table::num(s.throughput_rps, 1),
                           Table::num(s.p50_latency_us, 0),
                           Table::num(s.p95_latency_us, 0),
                           Table::num(s.mean_batch_size, 2),
                           Table::num(swaps_per_request, 3)});
            if (policy == serve::BatchingPolicy::fifo) {
                fifo_rps_sum += s.throughput_rps;
            } else {
                grouped_rps_sum += s.throughput_rps;
            }
        }
    }
    table.print();

    bench::print_claim(
        "task-grouped vs fifo throughput (mean over traffic mixes)",
        ">= 1x (amortized swaps)",
        Table::ratio(grouped_rps_sum / fifo_rps_sum));
    return 0;
}
