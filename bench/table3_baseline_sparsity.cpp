// Reproduces paper Table III: the conventional multi-task baselines —
// the VGG16 DNN fully fine-tuned per child task (starting from W_parent),
// with the layerwise neuronal sparsity that plain ReLU induces.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "core/sparsity.h"
#include "hw/sparsity_profile.h"

using namespace mime;

namespace {
constexpr double kPaperAccuracy[3] = {84.25, 60.55, 90.12};
}  // namespace

int main() {
    bench::print_banner(
        "Table III — baselines: fine-tuned child models and ReLU sparsity",
        "CIFAR10 84.25% / CIFAR100 60.55% / F-MNIST 90.12%; ReLU sparsity "
        "~0.45-0.60 per layer");

    bench::MiniSetup setup = bench::make_mini_setup();
    core::MimeNetwork network(setup.network_config);
    bench::ensure_trained_parent(network, setup);
    const auto parent_weights = network.snapshot_backbone();

    const std::vector<std::int64_t> children = setup.suite.children();
    const char* child_names[3] = {"CIFAR10-like", "CIFAR100-like",
                                  "F-MNIST-like"};
    const hw::PaperTask paper_tasks[3] = {
        hw::PaperTask::cifar10, hw::PaperTask::cifar100,
        hw::PaperTask::fmnist};

    std::vector<std::string> headers{"baseline child task", "acc (%)"};
    for (const auto& layer : bench::paper_reported_layers()) {
        headers.push_back(layer);
    }
    Table table(headers);
    Table paper_table(headers);

    for (std::size_t c = 0; c < children.size(); ++c) {
        const auto train = setup.suite.family->train_split(children[c]);
        const auto test = setup.suite.family->test_split(children[c]);

        // Conventional transfer learning: start from the parent weights
        // and fine-tune everything (shorter schedule than from-scratch).
        std::printf("[%s] fine-tuning all weights from W_parent ...\n",
                    child_names[c]);
        network.load_backbone(parent_weights);
        core::TrainOptions finetune = setup.train_options;
        finetune.epochs = std::max<std::int64_t>(2, finetune.epochs / 2);
        core::train_backbone(network, train, finetune);

        const auto eval =
            core::evaluate(network, test, 64, setup.train_options.pool);
        const auto sparsity = core::measure_sparsity(
            network, test, 64, setup.train_options.pool);

        std::vector<std::string> row{child_names[c],
                                     Table::num(eval.accuracy * 100.0, 2)};
        for (const auto& layer : bench::paper_reported_layers()) {
            row.push_back(Table::num(sparsity.layer(layer), 4));
        }
        table.add_row(row);

        const auto paper =
            hw::SparsityProfile::paper_baseline(paper_tasks[c]);
        std::vector<std::string> paper_row{
            child_names[c], Table::num(kPaperAccuracy[c], 2)};
        for (const auto& layer : bench::paper_reported_layers()) {
            for (std::int64_t li = 0; li < 15; ++li) {
                if (("conv" + std::to_string(li + 1)) == layer) {
                    paper_row.push_back(
                        Table::num(paper.output_sparsity(li), 4));
                    break;
                }
            }
        }
        paper_table.add_row(paper_row);

        bench::print_claim(
            std::string(child_names[c]) + " mean ReLU sparsity",
            Table::num(paper.average(), 3),
            Table::num(sparsity.overall(), 3));
    }

    std::printf("\nmeasured (this repo, synthetic tasks, VGG16-mini):\n");
    table.print();
    std::printf("\npaper (Table III, real datasets, full VGG16):\n");
    paper_table.print();
    std::printf(
        "\nnote: fine-tuned baselines keep one full weight set per task — the\n"
        "memory/energy cost MIME eliminates (see fig4/fig6 benches).\n");
    return 0;
}
