// Extension ablation: interleaving granularity in Pipelined task mode.
//
// The paper evaluates one queue shape (strict round-robin over 3 tasks,
// with the controller free to fetch the right parameters per item). This
// bench sweeps the run length of same-task stretches under an
// arrival-order-preserving controller: conventional schemes reload
// weights at every task switch (for layers whose per-task versions
// cannot coexist in cache), while MIME is insensitive to the queue shape
// — quantifying *when* MIME's advantage is largest and how much a
// task-major reordering window recovers for the conventional scheme.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "hw/schedule.h"

using namespace mime;
using hw::Scheme;

int main() {
    bench::print_banner(
        "Ablation — interleaving granularity vs energy (extension)",
        "paper evaluates run length 1 only; MIME's win should shrink as "
        "runs lengthen");

    const auto layers = bench::hw_eval_layers();
    const hw::InferenceSimulator sim{hw::SystolicConfig{}};
    constexpr std::int64_t kTasks = 3;
    constexpr std::int64_t kQueue = 24;

    const std::vector<hw::SparsityProfile> relu_profiles = {
        hw::SparsityProfile::paper_baseline(hw::PaperTask::cifar10),
        hw::SparsityProfile::paper_baseline(hw::PaperTask::cifar100),
        hw::SparsityProfile::paper_baseline(hw::PaperTask::fmnist)};
    const std::vector<hw::SparsityProfile> mime_profiles = {
        hw::SparsityProfile::paper_mime(hw::PaperTask::cifar10),
        hw::SparsityProfile::paper_mime(hw::PaperTask::cifar100),
        hw::SparsityProfile::paper_mime(hw::PaperTask::fmnist)};

    Table table({"run length", "task switches", "Case-2 energy",
                 "MIME energy", "MIME advantage"});
    double finest = 0.0;
    double coarsest = 0.0;
    // Run length 8 over a 24-item, 3-task queue is fully task-major.
    for (const std::int64_t run_length : {1, 2, 4, 8}) {
        const auto queue = hw::make_run_queue(kTasks, run_length, kQueue);
        const auto stats = hw::analyze_queue(queue);
        const double conventional = hw::queue_energy(
            sim, layers, Scheme::baseline_sparse, queue, relu_profiles);
        const double mime = hw::queue_energy(sim, layers, Scheme::mime,
                                             queue, mime_profiles);
        const double advantage = conventional / mime;
        if (run_length == 1) {
            finest = advantage;
        }
        coarsest = advantage;
        table.add_row({std::to_string(run_length),
                       std::to_string(stats.task_switches),
                       Table::num(conventional, 0), Table::num(mime, 0),
                       Table::ratio(advantage)});
    }

    // Best case for the conventional scheme: a task-major reordering
    // window over the whole queue.
    const auto round_robin = hw::make_run_queue(kTasks, 1, kQueue);
    const auto reordered = hw::task_major_order(round_robin);
    const double conv_reordered = hw::queue_energy(
        sim, layers, Scheme::baseline_sparse, reordered, relu_profiles);
    const double mime_rr = hw::queue_energy(sim, layers, Scheme::mime,
                                            round_robin, mime_profiles);
    table.add_row({"1 (reordered)", "2", Table::num(conv_reordered, 0),
                   Table::num(mime_rr, 0),
                   Table::ratio(conv_reordered / mime_rr)});
    table.print();

    std::printf("\n");
    bench::print_claim("MIME advantage at finest interleaving", "(max)",
                       Table::ratio(finest));
    bench::print_claim("MIME advantage at task-major queue", "(min)",
                       Table::ratio(coarsest));
    bench::print_claim(
        "advantage shrinks with coarser interleaving", "expected",
        finest > coarsest ? "yes" : "no");
    std::printf(
        "\ntakeaway: MIME's energy edge is exactly the task-switch tax. A\n"
        "conventional scheme needs a full reordering window (added latency,\n"
        "task-aware batching) to approach task-major efficiency; MIME gets\n"
        "it at run length 1 with no reordering.\n");
    return 0;
}
